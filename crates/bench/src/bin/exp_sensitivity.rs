//! Regenerates **Figure 11**: the LLC sensitivity study of all 36
//! benchmarks — IPC under every supported partition size, normalized to
//! the 8 MB IPC, plus the derived adequate LLC size and class.
//!
//! Usage: `cargo run --release -p untangle-bench --bin exp_sensitivity
//! [--scale 0.002] [--out results]`

use untangle_bench::experiments::sensitivity_study;
use untangle_bench::parallel;
use untangle_bench::parse_flag;
use untangle_bench::plot::sparkline;
use untangle_bench::table::{f3, TextTable};
use untangle_core::UntangleError;
use untangle_obs as obs;
use untangle_sim::config::PartitionSize;
use untangle_workloads::spec::spec_benchmarks;

fn main() {
    if let Err(e) = run() {
        eprintln!("exp_sensitivity: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), UntangleError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = parse_flag(&args, "--scale", 0.002);
    let out_dir: String = parse_flag(&args, "--out", "results".to_string());

    obs::diag!(
        "# Figure 11 sensitivity study at scale {scale} (36 benchmarks x 9 sizes, {} thread(s))",
        parallel::thread_count()
    );
    let rows = sensitivity_study(spec_benchmarks(), scale);

    let mut header: Vec<String> = vec!["benchmark".into()];
    header.extend(PartitionSize::ALL.iter().map(|s| s.to_string()));
    header.push("curve".into());
    header.push("adequate".into());
    header.push("class".into());
    let mut table = TextTable::new(header);
    for r in &rows {
        let mut cells: Vec<String> = vec![r.name.to_string()];
        cells.extend(r.normalized_ipc.iter().map(|&v| f3(v)));
        cells.push(sparkline(&r.normalized_ipc));
        cells.push(r.adequate.to_string());
        cells.push(
            if r.llc_sensitive() {
                "LLC-sensitive"
            } else {
                "insensitive"
            }
            .to_string(),
        );
        table.row(cells);
    }
    println!("{}", table.render());

    let sensitive: Vec<&str> = rows
        .iter()
        .filter(|r| r.llc_sensitive())
        .map(|r| r.name)
        .collect();
    println!(
        "LLC-sensitive benchmarks ({} of {}): {}",
        sensitive.len(),
        rows.len(),
        sensitive.join(", ")
    );
    println!("Paper: 8 LLC-sensitive, 28 insensitive.");

    std::fs::create_dir_all(&out_dir)?;
    let path = format!("{out_dir}/fig11_sensitivity.csv");
    untangle_bench::write_artifact(&path, table.render_csv().as_bytes())?;
    obs::diag!("wrote {path}");
    Ok(())
}
