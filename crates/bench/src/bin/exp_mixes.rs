//! Regenerates **Figure 10 and Figures 12–17**: for each workload mix,
//! the three chart rows — partition-size distribution, leakage per
//! assessment, and IPC normalized to Static — under all four schemes,
//! plus the §9 summary statistics (system-wide speedups and the
//! Maintain fraction).
//!
//! Usage: `cargo run --release -p untangle-bench --bin exp_mixes
//! [--scale 0.01] [--mix N] [--out results] [--resume] [--retries N]`
//! (omit `--mix` for all 16).
//!
//! The mixes fan out across threads (`parallel` feature,
//! `UNTANGLE_THREADS` to override the count) behind per-item panic
//! isolation: a crashing mix is retried up to `--retries` times and, if
//! it never succeeds, recorded in the run report while every other mix
//! completes. Each finished mix is checkpointed under
//! `<out>/checkpoints/`; `--resume` skips mixes whose checkpoint matches
//! the current scale and seed, making a resumed run byte-identical to an
//! uninterrupted one. Output and the `results/mixNN.csv` files are
//! bit-identical to a sequential run. Also appends its wall clock and
//! `R_max` cache statistics to `BENCH_experiments.json`.

use untangle_analysis::certify::{certify_scheme, CertifyConfig};
use untangle_bench::checkpoint::{CheckpointStore, MixSummary};
use untangle_bench::experiments::run_all_mixes_resumable;
use untangle_bench::harness::timed;
use untangle_bench::parallel::{self, RetryPolicy};
use untangle_bench::plot::BarChart;
use untangle_bench::report::{update_section, Json};
use untangle_bench::table::{f2, f3, TextTable};
use untangle_bench::{has_flag, parse_flag};
use untangle_core::scheme::SchemeKind;
use untangle_core::UntangleError;
use untangle_info::RmaxCache;
use untangle_obs as obs;
use untangle_workloads::mix::{mix_by_id, mixes};

fn print_mix(summary: &MixSummary, out_dir: &str) -> Result<(), UntangleError> {
    println!(
        "\n=== Mix {}: {} LLC-sensitive benchmarks; total LLC demand {:.1} MB ===",
        summary.mix_id,
        summary.sensitive.iter().filter(|&&s| s).count(),
        summary.total_demand_mb,
    );

    // Top row: partition-size distribution under Untangle.
    let mut dist = TextTable::new(vec![
        "workload", "scheme", "min", "q1", "median", "q3", "max",
    ]);
    for kind in [SchemeKind::Time, SchemeKind::Untangle] {
        let scheme = summary.scheme(kind);
        for (label, quartiles) in summary.labels.iter().zip(&scheme.quartiles) {
            if let Some([min, q1, med, q3, max]) = quartiles {
                dist.row(vec![
                    label.clone(),
                    kind.to_string(),
                    min.clone(),
                    q1.clone(),
                    med.clone(),
                    q3.clone(),
                    max.clone(),
                ]);
            }
        }
    }
    println!("-- partition size distribution (sampled every 100 µs-equivalent) --");
    println!("{}", dist.render());

    // Middle row: leakage per assessment.
    let mut leak = TextTable::new(vec!["workload", "TIME (bit)", "UNTANGLE (bit)"]);
    let time = summary.leakage_per_assessment(SchemeKind::Time);
    let unt = summary.leakage_per_assessment(SchemeKind::Untangle);
    for ((label, t), u) in summary.labels.iter().zip(&time).zip(&unt) {
        leak.row(vec![label.clone(), f3(*t), f3(*u)]);
    }
    println!("-- leakage per assessment --");
    println!("{}", leak.render());
    let mut chart = BarChart::new(
        "leakage per assessment (bit): TIME=3.17 flat; UNTANGLE:",
        40,
    );
    for (label, u) in summary.labels.iter().zip(&unt) {
        chart.bar(label.clone(), *u);
    }
    println!("{}", chart.render());

    // Bottom row: normalized IPC.
    let mut ipc = TextTable::new(vec!["workload", "STATIC", "TIME", "UNTANGLE", "SHARED"]);
    let norm: Vec<Vec<f64>> = SchemeKind::ALL
        .iter()
        .map(|&k| summary.normalized_ipc(k))
        .collect();
    for (i, label) in summary.labels.iter().enumerate() {
        ipc.row(vec![
            label.clone(),
            f2(norm[0][i]),
            f2(norm[1][i]),
            f2(norm[2][i]),
            f2(norm[3][i]),
        ]);
    }
    ipc.row(vec![
        "Geo. Mean".to_string(),
        f2(summary.speedup(SchemeKind::Static)),
        f2(summary.speedup(SchemeKind::Time)),
        f2(summary.speedup(SchemeKind::Untangle)),
        f2(summary.speedup(SchemeKind::Shared)),
    ]);
    println!("-- IPC normalized to STATIC --");
    println!("{}", ipc.render());

    println!(
        "Untangle Maintain fraction: {:.1} % (paper: ~90 % across all mixes)",
        summary.maintain_fraction() * 100.0
    );

    let path = format!("{out_dir}/mix{:02}.csv", summary.mix_id);
    let mut csv = TextTable::new(vec![
        "workload",
        "sensitive",
        "ipc_static",
        "ipc_time",
        "ipc_untangle",
        "ipc_shared",
        "leak_time",
        "leak_untangle",
    ]);
    for (i, label) in summary.labels.iter().enumerate() {
        csv.row(vec![
            label.clone(),
            summary.sensitive[i].to_string(),
            f3(norm[0][i]),
            f3(norm[1][i]),
            f3(norm[2][i]),
            f3(norm[3][i]),
            f3(time[i]),
            f3(unt[i]),
        ]);
    }
    untangle_bench::write_artifact(&path, csv.render_csv().as_bytes())?;
    obs::diag!("wrote {path}");
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("exp_mixes: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), UntangleError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = parse_flag(&args, "--scale", 0.01);
    let only_mix: usize = parse_flag(&args, "--mix", 0);
    let out_dir: String = parse_flag(&args, "--out", "results".to_string());
    let resume = has_flag(&args, "--resume");
    let retries: usize = parse_flag(&args, "--retries", 1);
    std::fs::create_dir_all(&out_dir)?;

    let selected = if only_mix > 0 {
        vec![mix_by_id(only_mix).ok_or_else(|| {
            UntangleError::InvalidConfig(format!("--mix {only_mix} is outside 1..=16"))
        })?]
    } else {
        mixes()
    };

    // Checkpoints are always written (so any run can later be resumed);
    // `--resume` controls whether existing ones are consulted. A store
    // that cannot be opened degrades to a plain, non-resumable run.
    let store = match CheckpointStore::new(format!("{out_dir}/checkpoints")) {
        Ok(store) => Some(store),
        Err(e) => {
            obs::diag!("warning: {e}; running without checkpoints");
            None
        }
    };

    obs::diag!(
        "# Figures 10, 12-17 at scale {scale} ({} mixes x 4 schemes, {} thread(s){})",
        selected.len(),
        parallel::thread_count(),
        if resume { ", resuming" } else { "" }
    );
    let (outcome, wall) = timed(|| {
        run_all_mixes_resumable(
            &selected,
            scale,
            RetryPolicy::new(retries),
            store.as_ref(),
            resume,
        )
    });
    let mut maintain_total = (0.0, 0);
    for summary in outcome.summaries.iter().flatten() {
        print_mix(summary, &out_dir)?;
        maintain_total.0 += summary.maintain_fraction();
        maintain_total.1 += 1;
    }
    println!(
        "\nOverall Untangle Maintain fraction across evaluated mixes: {:.1} %",
        maintain_total.0 / maintain_total.1.max(1) as f64 * 100.0
    );
    for failure in &outcome.failures {
        obs::diag!(
            "worker fault: mix item {} attempt {} panicked ({}){}",
            failure.item,
            failure.attempt,
            failure.message,
            if failure.recovered {
                "; recovered by retry"
            } else {
                ""
            }
        );
    }
    if !outcome.is_complete() {
        obs::diag!(
            "warning: {} mix(es) failed every attempt and are missing above",
            outcome.summaries.iter().filter(|s| s.is_none()).count()
        );
    }
    obs::diag!(
        "evaluated {} mixes ({} resumed from checkpoints) in {:.2} s on {} thread(s)",
        outcome.summaries.iter().flatten().count(),
        outcome.resumed,
        wall.as_secs_f64(),
        parallel::thread_count()
    );

    // Non-interference certificates (§5.1 action leakage): replay each
    // scheme across secret-equivalence classes under the taint audit
    // and embed the per-scheme verdict in the report. SHARED is out of
    // scope by design; its rejection is recorded rather than hidden.
    let mut certificates = Vec::new();
    let mut cert_table = TextTable::new(vec!["scheme", "verdict", "declassify sites"]);
    for kind in [
        SchemeKind::Static,
        SchemeKind::Time,
        SchemeKind::Untangle,
        SchemeKind::SecDcp,
        SchemeKind::Shared,
    ] {
        match certify_scheme(kind, &CertifyConfig::default()) {
            Ok(cert) => {
                let sites: Vec<String> = cert
                    .declassified_sites
                    .iter()
                    .map(|s| s.site.clone())
                    .collect();
                cert_table.row(vec![
                    cert.scheme.clone(),
                    cert.verdict.name().to_string(),
                    if sites.is_empty() {
                        "-".to_string()
                    } else {
                        sites.join(", ")
                    },
                ]);
                certificates.push(Json::parse(&cert.to_json()).map_err(|e| {
                    UntangleError::InvalidConfig(format!(
                        "certificate for {} rendered malformed JSON: {e}",
                        cert.scheme
                    ))
                })?);
            }
            Err(e) => {
                cert_table.row(vec![
                    kind.name().to_string(),
                    "OutOfScope".to_string(),
                    e.to_string(),
                ]);
                certificates.push(Json::obj(vec![
                    ("scheme", Json::Str(kind.name().to_string())),
                    ("verdict", Json::Str("OutOfScope".to_string())),
                    ("reason", Json::Str(e.to_string())),
                ]));
            }
        }
    }
    println!("-- non-interference certificates (action leakage, §5.1) --");
    println!("{}", cert_table.render());

    let cache = RmaxCache::global().stats();
    let section = Json::obj(vec![
        ("scale", Json::Num(scale)),
        ("mixes", Json::Int(outcome.summaries.len() as i64)),
        ("resumed", Json::Int(outcome.resumed as i64)),
        (
            "worker_failures",
            Json::Arr(
                outcome
                    .failures
                    .iter()
                    .map(|f| {
                        Json::obj(vec![
                            ("item", Json::Int(f.item as i64)),
                            ("attempt", Json::Int(f.attempt as i64)),
                            ("recovered", Json::Bool(f.recovered)),
                            ("message", Json::Str(f.message.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("certificates", Json::Arr(certificates)),
        ("threads", Json::Int(parallel::thread_count() as i64)),
        ("parallel", Json::Bool(parallel::is_parallel())),
        ("wall_clock_s", Json::Num(wall.as_secs_f64())),
        (
            "rmax_cache",
            Json::obj(vec![
                ("hits", Json::Int(cache.hits as i64)),
                ("misses", Json::Int(cache.misses as i64)),
                ("hit_rate", Json::Num(cache.hit_rate())),
            ]),
        ),
    ]);
    let report_path = std::path::Path::new("BENCH_experiments.json");
    update_section(report_path, "exp_mixes", &section)?;

    // Internal telemetry (solver iterations, cache traffic, per-mix
    // spans) from the obs layer. Always written: an empty block under
    // `UNTANGLE_OBS=off` keeps the report schema stable.
    let metrics = metrics_section();
    update_section(report_path, "metrics", &metrics)?;
    obs::diag!(
        "updated {} (exp_mixes + metrics sections)",
        report_path.display()
    );
    obs::emit_summary();
    Ok(())
}

/// Renders the global obs snapshot as the report's `"metrics"` section.
fn metrics_section() -> Json {
    let snap = obs::snapshot();
    Json::obj(vec![
        ("obs_mode", Json::Str(snap.mode.name().to_string())),
        (
            "counters",
            Json::Arr(
                snap.counters
                    .iter()
                    .map(|(name, v)| {
                        Json::obj(vec![
                            ("name", Json::Str(name.clone())),
                            ("value", Json::Int(*v as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "gauges",
            Json::Arr(
                snap.gauges
                    .iter()
                    .map(|(name, v)| {
                        Json::obj(vec![
                            ("name", Json::Str(name.clone())),
                            ("value", Json::Num(*v)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "spans",
            Json::Arr(
                snap.spans
                    .iter()
                    .map(|(name, s)| {
                        Json::obj(vec![
                            ("name", Json::Str(name.clone())),
                            ("count", Json::Int(s.count as i64)),
                            ("total_ns", Json::Int(s.total_ns as i64)),
                            ("max_ns", Json::Int(s.max_ns as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}
