//! Throughput of the `untangle-serve` engine across shard counts.
//!
//! Feeds one deterministic multi-tenant event stream (default: 1200
//! domains × 10 telemetry rounds, Untangle/Static mix with two Maintain
//! credits) through engines at 1, 2, 4 and 8 shards, checks the output
//! is byte-identical at every shard count, and records decisions/sec
//! per shard count in the `serve` section of `BENCH_serve.json`.
//!
//! Two determinism gates run alongside the timing:
//!
//! * every shard count must emit byte-identical output for the fixed
//!   input interleaving (shard fan-out is unobservable);
//! * a 1-shard engine must reproduce a batch [`Runner`] tap replay's
//!   decision traces bit for bit (`tap_equivalent` in the report).
//!
//! The container this repo builds in is single-core, so the per-shard
//! numbers chart the sharding overhead floor rather than a speedup;
//! they become a scaling curve on real hardware.
//!
//! Usage: `cargo run --release -p untangle-bench --bin serve_bench
//! [--domains 1200] [--rounds 10] [--burst 1024] [--out BENCH_serve.json]`

use std::path::Path;

use untangle_bench::harness::timed;
use untangle_bench::report::{update_section, Json};
use untangle_bench::{parse_flag, table::TextTable};
use untangle_core::UntangleError;
use untangle_obs as obs;
use untangle_serve::synth::{synth_events, tap_replay, SynthConfig};
use untangle_serve::{ServeConfig, ServeEngine};

fn main() {
    if let Err(e) = run() {
        eprintln!("serve_bench: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), UntangleError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let domains: u64 = parse_flag(&args, "--domains", 1200);
    let rounds: u64 = parse_flag(&args, "--rounds", 10);
    let burst: usize = parse_flag(&args, "--burst", 1024);
    let out = parse_flag(&args, "--out", "BENCH_serve.json".to_string());

    let config = ServeConfig::test_scale();
    let synth = SynthConfig {
        domains,
        rounds,
        ..SynthConfig::small()
    };
    let events = synth_events(&config.params, &synth);
    obs::diag!(
        "# serve_bench: {domains} domains x {rounds} rounds = {} events",
        events.len()
    );

    let mut table = TextTable::new(vec!["shards", "decisions", "secs", "decisions/sec"]);
    let mut sections = Vec::new();
    let mut reference: Option<Vec<String>> = None;
    for shards in [1usize, 2, 4, 8] {
        let mut engine = ServeEngine::new(ServeConfig {
            shards,
            // The audit capture is part of the serving cost, so it stays
            // on for the timed runs, exactly as the daemon runs it.
            ..config.clone()
        })?;
        let (lines, wall) = timed(|| engine.ingest_all(&events, burst));
        let lines = lines?;
        match &reference {
            None => reference = Some(lines.clone()),
            Some(reference) => assert_eq!(
                reference, &lines,
                "output must be byte-identical at {shards} shard(s)"
            ),
        }
        let decisions = lines.iter().filter(|l| l.contains("\"decision\"")).count();
        assert!(
            decisions as u64 >= domains / 2,
            "the stream must actually drive decisions"
        );
        let secs = wall.as_secs_f64();
        let rate = decisions as f64 / secs.max(1e-9);
        table.row(vec![
            shards.to_string(),
            decisions.to_string(),
            format!("{secs:.3}"),
            format!("{rate:.0}"),
        ]);
        sections.push((
            format!("shards{shards}"),
            Json::obj(vec![
                ("shards", Json::Int(shards as i64)),
                ("events", Json::Int(events.len() as i64)),
                ("decisions", Json::Int(decisions as i64)),
                ("secs", Json::Num(secs)),
                ("decisions_per_sec", Json::Num(rate)),
            ]),
        ));
    }

    // Equivalence gate: the serve path must still be the batch path.
    let replay = tap_replay(3, 42, None, false);
    let mut engine = ServeEngine::new(replay.config.clone())?;
    let _ = engine.ingest_all(&replay.events, burst)?;
    let tap_equivalent = replay
        .traces
        .iter()
        .enumerate()
        .all(|(d, trace)| engine.trace_of(d as u64) == Some(trace));
    assert!(
        tap_equivalent,
        "1-shard replay diverged from the batch runner"
    );

    println!("{}", table.render());
    println!("byte-identical across shard counts: yes");
    println!("tap replay bit-identical to the batch runner: yes");

    let mut payload: Vec<(&str, Json)> = vec![
        ("domains", Json::Int(domains as i64)),
        ("rounds", Json::Int(rounds as i64)),
        ("burst", Json::Int(burst as i64)),
        ("identical_across_shards", Json::Bool(true)),
        ("tap_equivalent", Json::Bool(tap_equivalent)),
    ];
    for (name, value) in &sections {
        payload.push((name.as_str(), value.clone()));
    }
    update_section(Path::new(&out), "serve", &Json::obj(payload))?;
    obs::diag!("wrote section `serve` of {out}");
    Ok(())
}
