//! Generated-scenario sweep over on-disk traces with SimPoint-style
//! phase sampling (ROADMAP item 3; DESIGN.md "Trace format & phase
//! sampling").
//!
//! Generates hundreds of scenario traces (phase-shifting, adversarial,
//! bursty, co-scheduled crypto) into WAL-journaled trace files, picks
//! weighted representative slices per trace, replays them under every
//! scheme, and validates the sampled IPC/leakage estimates against
//! full-trace runs on a subset. Writes the `exp_scenarios` section of
//! `BENCH_experiments.json`.
//!
//! Flags: `--count N`, `--trace-instrs N`, `--block N`, `--interval N`,
//! `--slices N`, `--validate-every N`, `--out DIR`, `--retries N`,
//! `--resume`, `--smoke` (CI-sized defaults). Generation and evaluation
//! are both resumable: a killed run continues mid-trace from the
//! durable prefix and skips checkpointed scenarios.

use std::path::Path;

use untangle_bench::parallel::RetryPolicy;
use untangle_bench::report::{update_section, Json};
use untangle_bench::scenarios::{
    run_scenario_sweep, summarize, ScenarioStore, SweepOutcome, SweepSettings, SweepSummary,
};
use untangle_bench::table::{f3, TextTable};
use untangle_bench::{has_flag, parse_flag};
use untangle_core::UntangleError;
use untangle_obs as obs;

fn main() {
    if let Err(e) = run() {
        eprintln!("exp_scenarios: {e}");
        std::process::exit(1);
    }
}

fn settings_from(args: &[String]) -> Result<SweepSettings, UntangleError> {
    let base = if has_flag(args, "--smoke") {
        SweepSettings::smoke()
    } else {
        SweepSettings::full()
    };
    let settings = SweepSettings {
        count: parse_flag(args, "--count", base.count),
        trace_instrs: parse_flag(args, "--trace-instrs", base.trace_instrs),
        block_instrs: parse_flag(args, "--block", base.block_instrs),
        interval_instrs: parse_flag(args, "--interval", base.interval_instrs),
        max_slices: parse_flag(args, "--slices", base.max_slices),
        validate_every: parse_flag(args, "--validate-every", base.validate_every),
    };
    if settings.count == 0
        || settings.trace_instrs == 0
        || settings.block_instrs == 0
        || settings.interval_instrs == 0
        || settings.max_slices == 0
    {
        return Err(UntangleError::InvalidConfig(
            "--count, --trace-instrs, --block, --interval, and --slices must be positive"
                .to_string(),
        ));
    }
    if settings.interval_instrs > settings.trace_instrs {
        return Err(UntangleError::InvalidConfig(format!(
            "--interval {} exceeds --trace-instrs {}",
            settings.interval_instrs, settings.trace_instrs
        )));
    }
    Ok(settings)
}

fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

fn print_summary(summary: &SweepSummary, outcome: &SweepOutcome) {
    println!(
        "\nScenario sweep: {}/{} scenarios complete ({} resumed from checkpoints)",
        summary.completed, summary.scenarios, outcome.resumed
    );
    println!(
        "Simulated {} sampled instructions vs {} full-trace equivalent ({:.2}x savings)\n",
        summary.sampled_instrs,
        summary.full_instrs,
        summary.speedup()
    );

    let mut table = TextTable::new(vec![
        "scheme",
        "mean IPC",
        "mean bits/assess",
        "validated",
        "IPC err (mean)",
        "IPC err (max)",
        "leak err (mean)",
        "leak err (max)",
    ]);
    for s in &summary.per_scheme {
        table.row(vec![
            s.kind.clone(),
            f3(s.mean_ipc),
            f3(s.mean_bits_per_assessment),
            s.validated.to_string(),
            pct(s.mean_ipc_error),
            pct(s.max_ipc_error),
            pct(s.mean_leakage_error),
            pct(s.max_leakage_error),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Worst sampling error: IPC {}, leakage {}",
        pct(summary.worst_ipc_error()),
        pct(summary.worst_leakage_error())
    );
}

fn section_json(summary: &SweepSummary, settings: &SweepSettings, resumed: usize) -> Json {
    Json::obj(vec![
        (
            "settings",
            Json::obj(vec![
                ("count", Json::Int(settings.count as i64)),
                ("trace_instrs", Json::Int(settings.trace_instrs as i64)),
                ("block_instrs", Json::Int(i64::from(settings.block_instrs))),
                (
                    "interval_instrs",
                    Json::Int(settings.interval_instrs as i64),
                ),
                ("max_slices", Json::Int(settings.max_slices as i64)),
                ("validate_every", Json::Int(settings.validate_every as i64)),
            ]),
        ),
        ("scenarios", Json::Int(summary.scenarios as i64)),
        ("completed", Json::Int(summary.completed as i64)),
        ("resumed", Json::Int(resumed as i64)),
        ("sampled_instrs", Json::Int(summary.sampled_instrs as i64)),
        ("full_instrs", Json::Int(summary.full_instrs as i64)),
        ("speedup", Json::Num(summary.speedup())),
        ("worst_ipc_error", Json::Num(summary.worst_ipc_error())),
        (
            "worst_leakage_error",
            Json::Num(summary.worst_leakage_error()),
        ),
        (
            "schemes",
            Json::Arr(
                summary
                    .per_scheme
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("kind", Json::Str(s.kind.clone())),
                            ("mean_ipc", Json::Num(s.mean_ipc)),
                            (
                                "mean_bits_per_assessment",
                                Json::Num(s.mean_bits_per_assessment),
                            ),
                            ("validated", Json::Int(s.validated as i64)),
                            ("mean_ipc_error", Json::Num(s.mean_ipc_error)),
                            ("max_ipc_error", Json::Num(s.max_ipc_error)),
                            ("mean_leakage_error", Json::Num(s.mean_leakage_error)),
                            ("max_leakage_error", Json::Num(s.max_leakage_error)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn run() -> Result<(), UntangleError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let settings = settings_from(&args)?;
    let out: String = parse_flag(&args, "--out", "target/exp_scenarios".to_string());
    let resume = has_flag(&args, "--resume");
    let retries: usize = parse_flag(&args, "--retries", 2);

    obs::diag!(
        "sweeping {} scenarios of {} instrs (interval {}, <= {} slices, validate every {})",
        settings.count,
        settings.trace_instrs,
        settings.interval_instrs,
        settings.max_slices,
        settings.validate_every
    );

    let out_dir = Path::new(&out);
    let store = ScenarioStore::new(out_dir.join("checkpoints"))?;
    let outcome = run_scenario_sweep(
        out_dir,
        &settings,
        Some(&store),
        resume,
        RetryPolicy::new(retries),
    )?;

    for f in &outcome.failures {
        obs::diag!(
            "scenario {} attempt {} panicked ({}): {}",
            f.item,
            f.attempt,
            if f.recovered { "recovered" } else { "fatal" },
            f.message
        );
    }
    for (i, e) in &outcome.errors {
        obs::diag!("scenario {i} failed: {e}");
    }

    let summary = summarize(&outcome.results, &settings);
    print_summary(&summary, &outcome);

    let section = section_json(&summary, &settings, outcome.resumed);
    update_section(
        Path::new("BENCH_experiments.json"),
        "exp_scenarios",
        &section,
    )?;
    println!("\nWrote BENCH_experiments.json section 'exp_scenarios' (out dir: {out})");
    obs::emit_summary();

    if !outcome.is_complete() {
        let failed = outcome.results.iter().filter(|r| r.is_none()).count();
        return Err(UntangleError::InvalidConfig(format!(
            "{failed} of {} scenarios failed; see diagnostics above",
            summary.scenarios
        )));
    }
    Ok(())
}
