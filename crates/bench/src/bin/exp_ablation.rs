//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Schedule** — a time-based schedule with an annotation-aware
//!    metric still produces secret-dependent action sequences (§3.4:
//!    timing entangles the actions; Principle 2 is necessary).
//! 2. **Annotations** — Untangle's schedule without annotations leaks
//!    the secret-dependent demand (Fig. 2, Edge ①; §5.2's annotation
//!    step is necessary).
//! 3. **Random delay δ (Mechanism 2)** — removing it raises every
//!    `R_max` table entry.
//! 4. **Maintain-optimized rate table (§5.3.4)** — worst-case
//!    accounting charges far more per assessment.
//! 5. **Metric choice** — the footprint metric (§5.2's example) versus
//!    the UMON hit curve, both timing-independent.
//! 6. **Related work** — a SecDCP-style tiered scheme degenerates to
//!    static partitioning when every domain handles secrets (§10).
//!
//! Usage: `cargo run --release -p untangle-bench --bin exp_ablation
//! [--scale 0.002]`

use untangle_bench::parse_flag;
use untangle_bench::table::{f3, TextTable};
use untangle_core::action::Action;
use untangle_core::metric::MetricPolicy;
use untangle_core::runner::{Runner, RunnerConfig};
use untangle_core::scheme::SchemeKind;
use untangle_core::UntangleError;
use untangle_trace::snippets::secret_gated_traversal;
use untangle_trace::source::TraceSource;
use untangle_trace::synth::{WorkingSetConfig, WorkingSetModel};
use untangle_trace::LineAddr;
use untangle_workloads::mix::mix_by_id;

fn fig1a_actions(
    kind: SchemeKind,
    policy: MetricPolicy,
    secret: bool,
    annotate: bool,
) -> Result<Vec<Action>, UntangleError> {
    let public = |seed| {
        WorkingSetModel::new(
            WorkingSetConfig {
                working_set_bytes: 512 << 10,
                ..WorkingSetConfig::default()
            },
            seed,
        )
        .take_instrs(120_000)
    };
    let gated = secret_gated_traversal(secret, 4 << 20, LineAddr::new(1 << 30), annotate)
        .chain(secret_gated_traversal(
            secret,
            4 << 20,
            LineAddr::new(1 << 30),
            annotate,
        ))
        .chain(secret_gated_traversal(
            secret,
            4 << 20,
            LineAddr::new(1 << 30),
            annotate,
        ));
    let mut config = RunnerConfig::test_scale(kind, 1);
    config.warmup_cycles = 0.0;
    config.slice_instrs = u64::MAX;
    config.metric_policy = Some(policy);
    let report = Runner::new(
        config,
        vec![Box::new(public(1).chain(gated).chain(public(2)))],
    )?
    .run();
    Ok(report.domains[0].trace.action_sequence())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("exp_ablation: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), UntangleError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = parse_flag(&args, "--scale", 0.01);

    // --- Ablations 1 & 2: which combinations keep actions secret-free?
    println!("== Action-sequence secret-independence (Figure 1a pattern) ==");
    let mut t = TextTable::new(vec![
        "schedule",
        "metric",
        "annotations",
        "action sequences across secrets",
    ]);
    let cases = [
        (
            SchemeKind::Untangle,
            MetricPolicy::PublicOnly,
            true,
            "progress",
            "public-only",
        ),
        (
            SchemeKind::Untangle,
            MetricPolicy::All,
            false,
            "progress",
            "everything",
        ),
        (
            SchemeKind::Time,
            MetricPolicy::PublicOnly,
            true,
            "time-based",
            "public-only",
        ),
        (
            SchemeKind::Time,
            MetricPolicy::All,
            false,
            "time-based",
            "everything",
        ),
    ];
    for (kind, policy, annotate, sched_name, metric_name) in cases {
        let a = fig1a_actions(kind, policy, false, annotate)?;
        let b = fig1a_actions(kind, policy, true, annotate)?;
        t.row(vec![
            sched_name.to_string(),
            metric_name.to_string(),
            annotate.to_string(),
            if a == b {
                "IDENTICAL".into()
            } else {
                "DIFFER (leaks)".to_string()
            },
        ]);
    }
    println!("{}", t.render());
    println!(
        "Only the full Untangle combination (progress schedule + annotation-aware\n\
         metric) removes the action leakage; each principle alone is insufficient.\n"
    );

    // --- Ablation 3: the random delay δ.
    println!("== Mechanism 2 ablation: R_max table with and without δ ==");
    let base = RunnerConfig::eval_scale(SchemeKind::Untangle, scale)?;
    let with_delay = base
        .params
        .build_rate_model(base.machine.timing.commit_width)?;
    let mut no_delay_params = base.params.clone();
    no_delay_params.delay_max_cycles = 0;
    let without_delay = no_delay_params.build_rate_model(base.machine.timing.commit_width)?;
    let mut t3 = TextTable::new(vec!["maintains", "R_max with δ", "R_max without δ"]);
    for m in 0..4 {
        t3.row(vec![
            m.to_string(),
            f3(with_delay.table.rate(m)),
            f3(without_delay.table.rate(m)),
        ]);
    }
    println!("{}", t3.render());

    // --- Ablation 4: maintain-optimized vs worst-case accounting.
    println!("== §5.3.4 ablation: optimized vs worst-case accounting (Mix 1) ==");
    let mix = mix_by_id(1)
        .ok_or_else(|| UntangleError::InvalidConfig("mix 1 is not defined".to_string()))?;
    let accounting_run = |optimized: bool| -> Result<f64, UntangleError> {
        let mut config = RunnerConfig::eval_scale(SchemeKind::Untangle, scale)?;
        config.params.optimized_accounting = optimized;
        let report = Runner::new(config, mix.sources(7, scale))?.run();
        Ok(report
            .domains
            .iter()
            .map(|d| d.leakage.bits_per_assessment())
            .sum::<f64>()
            / report.domains.len() as f64)
    };
    let optimized = accounting_run(true)?;
    let worst = accounting_run(false)?;
    println!("optimized accounting : {optimized:.3} bits/assessment");
    println!("worst-case accounting: {worst:.3} bits/assessment");
    println!(
        "(paper §9: 0.7 vs 3.8 bits; the Maintain credit is worth ~{:.0}x)\n",
        worst / optimized.max(1e-9)
    );

    // --- Ablation 5: metric choice (hit curve vs footprint).
    println!("== Metric ablation: hit curve vs footprint (Mix 1, Untangle) ==");
    let run_metric = |metric_kind| -> Result<f64, UntangleError> {
        let mut config = RunnerConfig::eval_scale(SchemeKind::Untangle, scale)?;
        config.params.metric_kind = metric_kind;
        Ok(Runner::new(config, mix.sources(7, scale))?
            .run()
            .geomean_ipc())
    };
    use untangle_core::scheme::MetricKind;
    let hits_ipc = run_metric(MetricKind::HitCurve)?;
    let footprint_ipc = run_metric(MetricKind::Footprint)?;
    println!("hit-curve metric geomean IPC: {hits_ipc:.3}");
    println!("footprint metric geomean IPC: {footprint_ipc:.3}");
    println!("(both are timing-independent; the hit curve sees reuse, the footprint only size)\n");

    // --- Ablation 6: SecDCP under the peer model.
    println!("== Related work: SecDCP-style tiered scheme (Mix 1) ==");
    let run_kind = |kind| -> Result<f64, UntangleError> {
        let config = RunnerConfig::eval_scale(kind, scale)?;
        Ok(Runner::new(config, mix.sources(7, scale))?
            .run()
            .geomean_ipc())
    };
    let static_ipc = run_kind(SchemeKind::Static)?;
    let secdcp_ipc = run_kind(SchemeKind::SecDcp)?;
    let untangle_ipc = run_kind(SchemeKind::Untangle)?;
    println!("STATIC geomean IPC  : {static_ipc:.3}");
    println!("SECDCP geomean IPC  : {secdcp_ipc:.3} (all domains sensitive => no resizing)");
    println!("UNTANGLE geomean IPC: {untangle_ipc:.3}");
    println!(
        "SecDCP's tiered model cannot adapt mutually-distrusting peers;\n\
         Untangle adapts them with a bounded leakage charge (§10)."
    );
    Ok(())
}
