//! The security/performance trade-off curve (§1's motivation, §3.3's
//! mechanism): with a fixed leakage budget, overestimating leakage
//! exhausts the budget sooner, freezing resizing and costing
//! performance. Untangle's tight bound stretches the same budget much
//! further than the conventional `log2 |A|`-per-assessment accounting.
//!
//! For a range of budgets, run Mix 1 under Time and Untangle and
//! report the system-wide speedup over Static.
//!
//! Usage: `cargo run --release -p untangle-bench --bin exp_budget
//! [--scale 0.005] [--out results]`

use untangle_bench::parse_flag;
use untangle_bench::table::{f2, TextTable};
use untangle_core::runner::{Runner, RunnerConfig};
use untangle_core::scheme::SchemeKind;
use untangle_sim::stats::geometric_mean;
use untangle_workloads::mix::mix_by_id;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = parse_flag(&args, "--scale", 0.005);
    let out_dir: String = parse_flag(&args, "--out", "results".to_string());
    std::fs::create_dir_all(&out_dir).expect("create results dir");

    let mix = mix_by_id(1).expect("mix 1 exists");
    let static_ipcs: Vec<f64> = {
        let config = RunnerConfig::eval_scale(SchemeKind::Static, scale);
        Runner::new(config, mix.sources(7, scale))
            .run()
            .domains
            .iter()
            .map(|d| d.ipc())
            .collect()
    };

    let speedup = |kind: SchemeKind, budget: Option<f64>| {
        let mut config = RunnerConfig::eval_scale(kind, scale);
        config.params.leakage_budget_bits = budget;
        let report = Runner::new(config, mix.sources(7, scale)).run();
        let normalized: Vec<f64> = report
            .domains
            .iter()
            .zip(&static_ipcs)
            .map(|(d, &s)| if s > 0.0 { d.ipc() / s } else { 0.0 })
            .collect();
        geometric_mean(&normalized)
    };

    eprintln!("# Security/performance trade-off at scale {scale} (Mix 1)");
    let budgets = [0.5, 2.0, 8.0, 32.0, 128.0, f64::INFINITY];
    let mut table = TextTable::new(vec![
        "leakage budget (bits)",
        "TIME speedup",
        "UNTANGLE speedup",
    ]);
    for &b in &budgets {
        let budget = if b.is_finite() { Some(b) } else { None };
        let label = if b.is_finite() {
            format!("{b}")
        } else {
            "unlimited".to_string()
        };
        table.row(vec![
            label,
            f2(speedup(SchemeKind::Time, budget)),
            f2(speedup(SchemeKind::Untangle, budget)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "A few bits of budget freeze the Time scheme almost immediately\n\
         (each assessment costs 3.17 bits), while Untangle keeps adapting:\n\
         the §3.3 observation that loose bounds waste the budget and\n\
         \"render dynamic schemes less appealing\"."
    );
    let path = format!("{out_dir}/budget_tradeoff.csv");
    std::fs::write(&path, table.render_csv()).expect("write csv");
    eprintln!("wrote {path}");
}
