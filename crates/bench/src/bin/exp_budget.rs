//! The security/performance trade-off curve (§1's motivation, §3.3's
//! mechanism): with a fixed leakage budget, overestimating leakage
//! exhausts the budget sooner, freezing resizing and costing
//! performance. Untangle's tight bound stretches the same budget much
//! further than the conventional `log2 |A|`-per-assessment accounting.
//!
//! For a range of budgets, run Mix 1 under Time and Untangle and
//! report the system-wide speedup over Static.
//!
//! Usage: `cargo run --release -p untangle-bench --bin exp_budget
//! [--scale 0.005] [--out results]`

use untangle_bench::experiments::budget_sweep;
use untangle_bench::parallel;
use untangle_bench::parse_flag;
use untangle_bench::table::{f2, TextTable};
use untangle_core::UntangleError;
use untangle_obs as obs;
use untangle_workloads::mix::mix_by_id;

fn main() {
    if let Err(e) = run() {
        eprintln!("exp_budget: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), UntangleError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = parse_flag(&args, "--scale", 0.005);
    let out_dir: String = parse_flag(&args, "--out", "results".to_string());
    std::fs::create_dir_all(&out_dir)?;

    obs::diag!(
        "# Security/performance trade-off at scale {scale} (Mix 1, {} thread(s))",
        parallel::thread_count()
    );
    let mix = mix_by_id(1)
        .ok_or_else(|| UntangleError::InvalidConfig("mix 1 is not defined".to_string()))?;
    let budgets = [
        Some(0.5),
        Some(2.0),
        Some(8.0),
        Some(32.0),
        Some(128.0),
        None,
    ];
    let rows = budget_sweep(&mix, scale, &budgets, 7);
    let mut table = TextTable::new(vec![
        "leakage budget (bits)",
        "TIME speedup",
        "UNTANGLE speedup",
    ]);
    for row in &rows {
        let label = match row.budget_bits {
            Some(b) => format!("{b}"),
            None => "unlimited".to_string(),
        };
        table.row(vec![label, f2(row.time_speedup), f2(row.untangle_speedup)]);
    }
    println!("{}", table.render());
    println!(
        "A few bits of budget freeze the Time scheme almost immediately\n\
         (each assessment costs 3.17 bits), while Untangle keeps adapting:\n\
         the §3.3 observation that loose bounds waste the budget and\n\
         \"render dynamic schemes less appealing\"."
    );
    let path = format!("{out_dir}/budget_tradeoff.csv");
    untangle_bench::write_artifact(&path, table.render_csv().as_bytes())?;
    obs::diag!("wrote {path}");
    Ok(())
}
