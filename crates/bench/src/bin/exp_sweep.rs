//! The cooldown knob (§5.3.2): "the longer the cooldown time is, the
//! lower the leakage rate is, and the slower the program execution
//! is." Sweeps Untangle's assessment interval `N` (and with it the
//! structural cooldown `T_c = N/w` and the matching delay width) over
//! one workload mix and reports total leakage against performance.
//!
//! Usage: `cargo run --release -p untangle-bench --bin exp_sweep
//! [--scale 0.005] [--out results]`

use untangle_bench::experiments::cooldown_sweep;
use untangle_bench::parallel;
use untangle_bench::parse_flag;
use untangle_bench::table::{f2, TextTable};
use untangle_core::UntangleError;
use untangle_obs as obs;
use untangle_workloads::mix::mix_by_id;

fn main() {
    if let Err(e) = run() {
        eprintln!("exp_sweep: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), UntangleError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = parse_flag(&args, "--scale", 0.005);
    let out_dir: String = parse_flag(&args, "--out", "results".to_string());
    std::fs::create_dir_all(&out_dir)?;

    obs::diag!(
        "# Cooldown sweep at scale {scale} (Mix 1, Untangle, {} thread(s))",
        parallel::thread_count()
    );
    let mix = mix_by_id(1)
        .ok_or_else(|| UntangleError::InvalidConfig("mix 1 is not defined".to_string()))?;
    // Larger factor = shorter interval = more responsive but leakier.
    let rows = cooldown_sweep(&mix, scale, &[4, 2, 1], 7);
    let mut table = TextTable::new(vec![
        "interval (instrs)",
        "T_c (cycles)",
        "speedup over STATIC",
        "avg bits/assessment",
        "avg total bits",
        "assessments",
    ]);
    for row in &rows {
        table.row(vec![
            row.interval.to_string(),
            format!("{}", row.interval / 8),
            f2(row.speedup),
            format!("{:.3}", row.avg_bits_per_assessment),
            f2(row.avg_total_bits),
            format!("{:.0}", row.avg_assessments),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Shorter intervals react faster but assess more often: more\n\
         transmissions at a higher certified rate. The paper's chosen\n\
         point (8 M instructions / 1 ms cooldown) matches the Time\n\
         scheme's responsiveness at a fraction of its leakage."
    );
    let path = format!("{out_dir}/cooldown_sweep.csv");
    untangle_bench::write_artifact(&path, table.render_csv().as_bytes())?;
    obs::diag!("wrote {path}");
    Ok(())
}
