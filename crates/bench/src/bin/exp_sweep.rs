//! The cooldown knob (§5.3.2): "the longer the cooldown time is, the
//! lower the leakage rate is, and the slower the program execution
//! is." Sweeps Untangle's assessment interval `N` (and with it the
//! structural cooldown `T_c = N/w` and the matching delay width) over
//! one workload mix and reports total leakage against performance.
//!
//! Usage: `cargo run --release -p untangle-bench --bin exp_sweep
//! [--scale 0.005] [--out results]`

use untangle_bench::parse_flag;
use untangle_bench::table::{f2, TextTable};
use untangle_core::runner::{Runner, RunnerConfig};
use untangle_core::scheme::SchemeKind;
use untangle_sim::stats::geometric_mean;
use untangle_workloads::mix::mix_by_id;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = parse_flag(&args, "--scale", 0.005);
    let out_dir: String = parse_flag(&args, "--out", "results".to_string());
    std::fs::create_dir_all(&out_dir).expect("create results dir");

    let mix = mix_by_id(1).expect("mix 1 exists");
    let static_ipcs: Vec<f64> = {
        let config = RunnerConfig::eval_scale(SchemeKind::Static, scale);
        Runner::new(config, mix.sources(7, scale))
            .run()
            .domains
            .iter()
            .map(|d| d.ipc())
            .collect()
    };

    eprintln!("# Cooldown sweep at scale {scale} (Mix 1, Untangle)");
    let base_interval = (8_000_000.0 * scale) as u64;
    let mut table = TextTable::new(vec![
        "interval (instrs)",
        "T_c (cycles)",
        "speedup over STATIC",
        "avg bits/assessment",
        "avg total bits",
        "assessments",
    ]);
    for factor in [4u64, 2, 1] {
        // Larger factor = shorter interval = more responsive but leakier.
        let interval = base_interval / factor;
        let mut config = RunnerConfig::eval_scale(SchemeKind::Untangle, scale);
        config.params.progress_interval_instrs = interval;
        config.params.delay_max_cycles = interval / 8; // δ ~ U[0, T_c)
        let report = Runner::new(config, mix.sources(7, scale)).run();
        let normalized: Vec<f64> = report
            .domains
            .iter()
            .zip(&static_ipcs)
            .map(|(d, &s)| if s > 0.0 { d.ipc() / s } else { 0.0 })
            .collect();
        let n = report.domains.len() as f64;
        let avg_bits = report
            .domains
            .iter()
            .map(|d| d.leakage.bits_per_assessment())
            .sum::<f64>()
            / n;
        let avg_total = report
            .domains
            .iter()
            .map(|d| d.leakage.total_bits)
            .sum::<f64>()
            / n;
        let assessments = report
            .domains
            .iter()
            .map(|d| d.leakage.assessments)
            .sum::<u64>() as f64
            / n;
        table.row(vec![
            interval.to_string(),
            format!("{}", interval / 8),
            f2(geometric_mean(&normalized)),
            format!("{avg_bits:.3}"),
            f2(avg_total),
            format!("{assessments:.0}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Shorter intervals react faster but assess more often: more\n\
         transmissions at a higher certified rate. The paper's chosen\n\
         point (8 M instructions / 1 ms cooldown) matches the Time\n\
         scheme's responsiveness at a fraction of its leakage."
    );
    let path = format!("{out_dir}/cooldown_sweep.csv");
    std::fs::write(&path, table.render_csv()).expect("write csv");
    eprintln!("wrote {path}");
}
