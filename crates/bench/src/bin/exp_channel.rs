//! Regenerates the **§5.3 covert-channel artifacts**:
//!
//! * the §5.3.1 strategy trade-off example (800 vs ≈667 bit/s);
//! * `R_max` versus the cooldown time `T_c` (Mechanism 1);
//! * `R_max` versus the random-delay width (Mechanism 2);
//! * the §5.3.4 rate table over consecutive Maintains
//!   (`T'_c = (n+1)·T_c`);
//! * the Figure 3 leakage-decomposition worked example (1.5 bits).
//!
//! Usage: `cargo run --release -p untangle-bench --bin exp_channel
//! [--out results]`

use untangle_bench::experiments::{rmax_vs_cooldown, rmax_vs_delay, strategy_example};
use untangle_bench::parse_flag;
use untangle_bench::table::{f3, TextTable};
use untangle_core::UntangleError;
use untangle_info::decompose::TraceEnsemble;
use untangle_info::rate_table::{RateTable, RateTableConfig};
use untangle_info::{DelayDist, RmaxCache};
use untangle_obs as obs;

fn main() {
    if let Err(e) = run() {
        eprintln!("exp_channel: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), UntangleError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_dir: String = parse_flag(&args, "--out", "results".to_string());
    std::fs::create_dir_all(&out_dir)?;

    // §5.3.1 strategy example.
    let (s1, s2) = strategy_example();
    println!("== §5.3.1 strategy trade-off (1 unit = 1 ms) ==");
    println!("Strategy 1 (4 symbols, 1-4 ms): {s1:.0} bit/s  (paper: 800)");
    println!("Strategy 2 (8 symbols, 1-8 ms): {s2:.0} bit/s  (paper: ~667)");

    // Figure 3 worked example.
    let mut ensemble = TraceEnsemble::new();
    ensemble.add_trace(vec!["EXPAND", "MAINTAIN"], vec![100, 200], 0.25);
    ensemble.add_trace(vec!["EXPAND", "MAINTAIN"], vec![150, 300], 0.25);
    ensemble.add_trace(vec!["MAINTAIN", "MAINTAIN"], vec![120, 240], 0.5);
    let leak = ensemble.leakage()?;
    println!("\n== Figure 3 leakage decomposition ==");
    println!(
        "action leakage H(S) = {:.1} bit; scheduling leakage E[H(T_s|S=s)] = {:.1} bit; total {:.1} bits (paper: 1 + 0.5 = 1.5)",
        leak.action_bits,
        leak.scheduling_bits,
        leak.total_bits()
    );

    // R_max vs cooldown (Mechanism 1).
    println!("\n== R_max vs cooldown T_c (delay width 8 units) ==");
    let mut t1 = TextTable::new(vec!["T_c (units)", "R_max (bit/unit)"]);
    for p in rmax_vs_cooldown(&[8, 16, 32, 64, 128], 8) {
        t1.row(vec![p.cooldown.to_string(), f3(p.rmax)]);
    }
    println!("{}", t1.render());

    // R_max vs delay width (Mechanism 2).
    println!("== R_max vs random-delay width (T_c = 16 units) ==");
    let mut t2 = TextTable::new(vec!["delay width (units)", "R_max (bit/unit)"]);
    for p in rmax_vs_delay(16, &[1, 2, 4, 8, 16, 32]) {
        t2.row(vec![p.delay_width.to_string(), f3(p.rmax)]);
    }
    println!("{}", t2.render());

    // §5.3.4 rate table over consecutive Maintains. Entry 0 (T'_c = 16,
    // delay width 8) is the same channel the Mechanism-1/2 sweeps above
    // solved, so it comes straight from the cache.
    println!("== §5.3.4 rate table: R_max after n consecutive Maintains ==");
    let (table, _stats) = RateTable::precompute_cached(
        &RateTableConfig {
            cooldown: 16,
            n_symbols: 8,
            step: 8,
            delay: DelayDist::uniform(8)?,
            max_maintains: 8,
        },
        &Default::default(),
        RmaxCache::global(),
    )?;
    let mut t3 = TextTable::new(vec![
        "consecutive Maintains",
        "effective T'_c",
        "R_max (bit/unit)",
    ]);
    for (m, &r) in table.rates().iter().enumerate() {
        t3.row(vec![
            m.to_string(),
            format!("{}", (m as u64 + 1) * 16),
            f3(r),
        ]);
    }
    println!("{}", t3.render());

    let path = format!("{out_dir}/channel.csv");
    untangle_bench::write_artifact(
        &path,
        format!("{}{}{}", t1.render_csv(), t2.render_csv(), t3.render_csv()).as_bytes(),
    )?;
    obs::diag!("wrote {path}");

    let cache = RmaxCache::global().stats();
    obs::diag!(
        "R_max cache: {} hits / {} misses ({:.0} % hit rate)",
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0
    );
    Ok(())
}
