//! Regenerates the **§9 active-attacker study**: Untangle's leakage per
//! assessment *without* the §5.3.4 Maintain optimization, while an
//! active attacker squeezes the victim partition after every Maintain —
//! versus the optimized benign case. The paper measures 3.8 bits per
//! assessment for the worst case versus 0.7 optimized, and stresses
//! that even then the leakage threshold is enforced (security holds,
//! only performance suffers).
//!
//! Usage: `cargo run --release -p untangle-bench --bin
//! exp_active_attacker [--scale 0.01] [--mixes 4] [--out results]`

use untangle_bench::experiments::active_attacker_study;
use untangle_bench::parse_flag;
use untangle_bench::table::{f2, TextTable};
use untangle_core::UntangleError;
use untangle_obs as obs;
use untangle_workloads::mix::mix_by_id;

fn main() {
    if let Err(e) = run() {
        eprintln!("exp_active_attacker: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), UntangleError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = parse_flag(&args, "--scale", 0.01);
    let n_mixes: usize = parse_flag(&args, "--mixes", 4);
    let out_dir: String = parse_flag(&args, "--out", "results".to_string());
    std::fs::create_dir_all(&out_dir)?;

    obs::diag!("# §9 active-attacker study at scale {scale} (first {n_mixes} mixes)");
    let mut table = TextTable::new(vec![
        "Mix",
        "optimized, benign (bit/assess)",
        "worst case, squeezed (bit/assess)",
    ]);
    let mut benign_sum = 0.0;
    let mut worst_sum = 0.0;
    for id in 1..=n_mixes.clamp(1, 16) {
        let mix = mix_by_id(id)
            .ok_or_else(|| UntangleError::InvalidConfig(format!("mix {id} is not defined")))?;
        let row = active_attacker_study(&mix, scale);
        table.row(vec![
            format!("Mix {}", row.mix_id),
            f2(row.optimized_benign),
            f2(row.worst_case),
        ]);
        benign_sum += row.optimized_benign;
        worst_sum += row.worst_case;
    }
    println!("{}", table.render());
    let n = n_mixes.clamp(1, 16) as f64;
    println!(
        "Averages — optimized benign: {:.2} bit/assess; worst case: {:.2} bit/assess",
        benign_sum / n,
        worst_sum / n
    );
    println!("Paper: 0.7 bits optimized vs 3.8 bits worst case.");

    let path = format!("{out_dir}/active_attacker.csv");
    untangle_bench::write_artifact(&path, table.render_csv().as_bytes())?;
    obs::diag!("wrote {path}");
    Ok(())
}
