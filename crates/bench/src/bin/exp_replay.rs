//! The §6.2 replay attack and its defence: an attacker replays the
//! victim program many times, gaining scheduling information at every
//! run — so the operating system accumulates the victim's charged
//! leakage across runs against one lifetime budget. Once the budget is
//! spent, later runs may not resize: their performance drops, their
//! security does not.
//!
//! Usage: `cargo run --release -p untangle-bench --bin exp_replay
//! [--scale 0.004] [--runs 8] [--budget 3.0]`

use untangle_bench::parse_flag;
use untangle_bench::table::{f2, TextTable};
use untangle_core::runner::{Runner, RunnerConfig};
use untangle_core::scheme::SchemeKind;
use untangle_core::UntangleError;
use untangle_obs as obs;
use untangle_trace::synth::{WorkingSetConfig, WorkingSetModel};

fn main() {
    if let Err(e) = run() {
        eprintln!("exp_replay: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), UntangleError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = parse_flag(&args, "--scale", 0.004);
    let runs: usize = parse_flag(&args, "--runs", 6);
    let budget: f64 = parse_flag(&args, "--budget", 25.0);

    obs::diag!("# §6.2 replay study: {runs} runs against a {budget}-bit lifetime budget");
    let mut carried = 0.0;
    let mut table = TextTable::new(vec![
        "run",
        "budget left (bit)",
        "charged (bit)",
        "resizes",
        "IPC",
    ]);
    for run in 1..=runs {
        let mut config = RunnerConfig::eval_scale(SchemeKind::Untangle, scale)?;
        // The OS carries the accumulated leakage into the new run by
        // shrinking the remaining budget.
        config.params.leakage_budget_bits = Some((budget - carried).max(0.0));
        let source = WorkingSetModel::new(
            WorkingSetConfig {
                working_set_bytes: 4 << 20,
                ..WorkingSetConfig::default()
            },
            9,
        );
        let report = Runner::new(config, vec![Box::new(source)])?.run();
        let d = &report.domains[0];
        table.row(vec![
            run.to_string(),
            f2((budget - carried).max(0.0)),
            f2(d.leakage.total_bits),
            d.leakage.visible_actions.to_string(),
            format!("{:.3}", d.ipc()),
        ]);
        carried += d.leakage.total_bits;
        assert!(
            carried <= budget + 1e-9,
            "lifetime budget must never be exceeded"
        );
    }
    println!("{}", table.render());
    println!(
        "Total charged across all runs: {carried:.2} of {budget:.2} bits.\n\
         Early runs resize (and leak within budget); once the lifetime\n\
         budget is spent, later runs are frozen at 2 MB — slower, but the\n\
         attacker's replays stop paying."
    );
    Ok(())
}
