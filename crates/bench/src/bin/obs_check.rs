//! Validates a line-delimited observability event file produced by
//! `UNTANGLE_OBS=json UNTANGLE_OBS_FILE=<path> <experiment bin>`.
//!
//! Usage: `cargo run -p untangle-bench --bin obs_check -- <events.jsonl>`
//!
//! Every non-empty line must parse through the bench crate's own JSON
//! parser and carry a `"type"` field; at least one event line is
//! required overall, so an empty or truncated file fails too. Exits
//! nonzero on the first violation — CI uses this as the smoke gate for
//! the JSON sink.

use std::process::ExitCode;

use untangle_bench::report::Json;

/// Checks every non-empty line of `text`; returns the number of valid
/// event lines or a description of the first violation.
fn check_lines(text: &str) -> Result<usize, String> {
    let mut events = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let json = Json::parse(line)
            .map_err(|e| format!("line {}: invalid JSON ({e}): {line}", lineno + 1))?;
        if json.get("type").and_then(Json::as_str).is_none() {
            return Err(format!(
                "line {}: event has no string \"type\" field: {line}",
                lineno + 1
            ));
        }
        events += 1;
    }
    if events == 0 {
        return Err("no event lines found (is UNTANGLE_OBS=json set?)".to_string());
    }
    Ok(events)
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: obs_check <events.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("obs_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check_lines(&text) {
        Ok(events) => {
            println!("obs_check: {events} valid event line(s) in {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs_check: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_event_lines() {
        let text = "\n{\"type\":\"event\",\"name\":\"x\"}\n\n{\"type\":\"counter\",\"value\":3}\n";
        assert_eq!(check_lines(text), Ok(2));
    }

    #[test]
    fn rejects_empty_files_and_bad_lines() {
        assert!(check_lines("").is_err());
        assert!(check_lines("\n  \n").is_err());
        assert!(check_lines("{\"type\":\"event\"}\nnot json").is_err());
        assert!(check_lines("{\"name\":\"no type field\"}").is_err());
        assert!(check_lines("{\"type\":7}").is_err());
    }
}
