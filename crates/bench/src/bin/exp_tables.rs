//! Regenerates the paper's descriptive tables from the code's own
//! constants, so every table in the paper has a harness:
//!
//! * **Table 1** — prior dynamic partitioning schemes;
//! * **Table 2** — the components of a dynamic partitioning scheme;
//! * **Table 3** — simulated architecture parameters;
//! * **Table 4** — the evaluated partitioning schemes;
//! * **Table 5** — the cryptographic benchmarks.
//!
//! Usage: `cargo run --release -p untangle-bench --bin exp_tables`

use untangle_bench::table::TextTable;
use untangle_core::prior::PRIOR_SCHEMES;
use untangle_core::scheme::SchemeKind;
use untangle_sim::config::{MachineConfig, PartitionSize};
use untangle_workloads::crypto::crypto_benchmarks;

fn main() {
    println!("== Table 1: prior dynamic partitioning schemes ==");
    let mut t1 = TextTable::new(vec![
        "Name",
        "Resource",
        "Utilization Metric",
        "Action Heuristic",
        "Resizing Schedule",
    ]);
    for s in &PRIOR_SCHEMES {
        t1.row(vec![
            s.name,
            s.resource,
            s.utilization_metric,
            s.action_heuristic,
            s.resizing_schedule,
        ]);
    }
    println!("{}", t1.render());

    println!("== Table 2: components of a dynamic partitioning scheme ==");
    let mut t2 = TextTable::new(vec!["Component", "Description", "In this codebase"]);
    t2.row(vec![
        "Utilization Metric",
        "Measure of the demand for the resource",
        "untangle_core::metric (hit curve / footprint)",
    ]);
    t2.row(vec![
        "Action Heuristic & Resizing Actions",
        "How to pick what resizing action to perform",
        "untangle_core::heuristic + action::Action",
    ]);
    t2.row(vec![
        "Resizing Schedule",
        "When to assess and perform the action",
        "untangle_core::schedule (time / progress)",
    ]);
    println!("{}", t2.render());

    println!("== Table 3: parameters of the simulated architecture ==");
    let m = MachineConfig::default();
    let mut t3 = TextTable::new(vec!["Parameter", "Value"]);
    t3.row(vec![
        "Architecture".to_string(),
        format!(
            "{} out-of-order cores at {:.1} GHz",
            m.cores,
            m.timing.frequency_hz as f64 / 1e9
        ),
    ]);
    t3.row(vec![
        "Core".to_string(),
        format!("{}-commit (trace-driven model)", m.timing.commit_width),
    ]);
    t3.row(vec![
        "Private L1".to_string(),
        format!(
            "{} kB, 64 B line, {}-way, {}-cycle RT",
            m.l1_bytes >> 10,
            m.l1_ways,
            m.timing.l1_latency
        ),
    ]);
    t3.row(vec![
        "Shared LLC".to_string(),
        format!(
            "{} MB, 64 B line, {}-way, {}-cycle RT",
            m.llc_bytes >> 20,
            m.llc_ways,
            m.timing.llc_latency
        ),
    ]);
    t3.row(vec![
        "DRAM".to_string(),
        format!(
            "{} cycles RT after LLC ({} ns)",
            m.timing.dram_latency,
            m.timing.dram_latency * 1_000_000_000 / m.timing.frequency_hz
        ),
    ]);
    t3.row(vec![
        "Supported partition sizes".to_string(),
        PartitionSize::ALL
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    ]);
    t3.row(vec![
        "Monitor window M_w".to_string(),
        format!(
            "{} sampled accesses (1/{} set sampling)",
            m.umon_window, m.umon_sample_ratio
        ),
    ]);
    println!("{}", t3.render());

    println!("== Table 4: partitioning schemes evaluated ==");
    let mut t4 = TextTable::new(vec!["Scheme", "Description"]);
    for kind in SchemeKind::ALL {
        let desc = match kind {
            SchemeKind::Static => "Static partitioning. Each domain uses a 2 MB partition",
            SchemeKind::Time => "Dynamic partitioning. Assessing resizing every 1 ms (scaled)",
            SchemeKind::Untangle => {
                "Dynamic partitioning. Assessing every 8 M retired instructions (scaled) with cooldown and random delay"
            }
            SchemeKind::Shared => "No partitions. All domains share the 16 MB LLC",
            SchemeKind::SecDcp => {
                "Tiered dynamic partitioning. Resizes only across sensitivity tiers (SecDCP)"
            }
        };
        t4.row(vec![kind.name(), desc]);
    }
    println!("{}", t4.render());

    println!("== Table 5: cryptographic benchmarks ==");
    let mut t5 = TextTable::new(vec!["Name", "Table/state footprint", "Memory fraction"]);
    for c in crypto_benchmarks() {
        t5.row(vec![
            c.name.to_string(),
            format!("{} kB", c.table_bytes >> 10),
            format!("{:.0} %", c.mem_fraction() * 100.0),
        ]);
    }
    println!("{}", t5.render());
}
