//! Experiment harness regenerating the paper's tables and figures.
//!
//! Each binary in `src/bin/` regenerates one artifact (see DESIGN.md's
//! per-experiment index); the logic lives here so integration tests can
//! reuse it:
//!
//! * [`experiments::sensitivity_study`] — Fig. 11: normalized IPC of
//!   every benchmark under every partition size, and the derived
//!   adequate LLC sizes.
//! * [`experiments::evaluate_mix`] — Figs. 10, 12–17: per-mix scheme
//!   comparison (normalized IPC, leakage per assessment, partition-size
//!   distribution).
//! * [`experiments::leakage_summary`] — Table 6: average per-assessment
//!   and total leakage under Time and Untangle.
//! * [`experiments::active_attacker_study`] — §9's worst-case leakage
//!   without the Maintain optimization, under squeeze pressure.
//! * [`experiments::rmax_vs_cooldown`] / [`experiments::rmax_vs_delay`] /
//!   [`experiments::strategy_example`] — §5.3's covert-channel behaviour:
//!   the strategy trade-off example, `R_max` against cooldown, delay
//!   width, and Maintain credit.
//! * [`table`] — plain-text table rendering for the binaries.
//! * [`plot`] — ASCII bar charts and sparklines for figure-shaped
//!   output.
//! * [`parallel`] — deterministic fan-out of experiment work across
//!   threads (the `parallel` cargo feature, on by default), with
//!   per-item panic isolation and bounded retries.
//! * [`checkpoint`] — persisted work items and the `--resume` flow, so
//!   a killed sweep recomputes at most the items that were in flight.
//! * [`scenarios`] — the `exp_scenarios` sweep: on-disk trace
//!   generation, SimPoint-style slice sampling, weighted slice replay
//!   under every scheme, and sampled-vs-full validation.
//! * [`harness`] — a dependency-free micro-benchmark timer used by the
//!   `benches/` targets.
//! * [`report`] — the machine-readable `BENCH_experiments.json` perf
//!   trajectory emitted by `exp_mixes` and `exp_table6`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod experiments;
pub mod harness;
pub mod parallel;
pub mod plot;
pub mod report;
pub mod scenarios;
pub mod table;

/// Parses a `--flag value` style argument from `args`, with a default.
///
/// ```
/// let args = vec!["--scale".to_string(), "0.05".to_string()];
/// let scale: f64 = untangle_bench::parse_flag(&args, "--scale", 0.01);
/// assert_eq!(scale, 0.05);
/// ```
pub fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Whether a bare `--flag` is present.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Atomically writes an experiment artifact (a CSV, a report fragment),
/// folding the durability error into [`UntangleError`] so the binaries
/// can `?` it: every experiment binary reports failures through its exit
/// status instead of panicking (the `untangle-lint` panic-free rule
/// covers `src/bin/`).
pub fn write_artifact(path: &str, bytes: &[u8]) -> Result<(), untangle_core::UntangleError> {
    untangle_durable::atomic::atomic_write(path.as_ref(), bytes)
        .map_err(|e| untangle_core::UntangleError::Io(e.to_string()))
}
