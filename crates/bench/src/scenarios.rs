//! The scenario sweep behind `exp_scenarios`: on-disk trace generation,
//! SimPoint-style phase sampling, and weighted slice replay, measured
//! against full-trace references.
//!
//! The pipeline per scenario (all deterministic, all resumable):
//!
//! 1. **Generate** the scenario's trace into `<out>/traces/` through
//!    [`TraceWriter`] — every block goes through the durable WAL, so a
//!    kill mid-generation (including under `UNTANGLE_FAULT_INJECT`)
//!    leaves a valid prefix that [`generate_trace`] resumes to a
//!    byte-identical file.
//! 2. **Profile** the trace into interval vectors
//!    ([`untangle_trace::bbv`]) and cluster them into weighted
//!    representative slices ([`untangle_trace::simpoint`]).
//! 3. **Replay** each slice under every scheme with instruction-count
//!    warmup ([`RunnerConfig::warmup_instrs`]): the slice's trace
//!    prefix replays with measurement off, so both the cache and the
//!    scheme's partition state are reconstructed before the measured
//!    window — which then aligns *exactly* with the representative
//!    interval. Per-slice results combine by cluster weight in *CPI*
//!    space ([`untangle_sim::stats::weighted_mean`] over cycles per
//!    instruction): intervals hold instructions constant, so cycles —
//!    not IPC — are what add across the trace.
//! 4. **Validate** every `validate_every`-th scenario against a
//!    full-trace run under the same warmup treatment, recording the
//!    sampled-vs-full IPC and leakage error
//!    ([`untangle_sim::stats::relative_error`]).
//!
//! Completed scenarios checkpoint through [`ScenarioStore`] (the same
//! durable [`Slot`] discipline as [`crate::checkpoint`]), fingerprinted
//! over every sweep setting plus both format versions, so `--resume`
//! can never replay a checkpoint into a differently-configured sweep.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use untangle_core::runner::{DomainReport, Runner, RunnerConfig};
use untangle_core::scheme::SchemeKind;
use untangle_core::UntangleError;
use untangle_durable::slot::{Slot, SlotState};
use untangle_obs as obs;
use untangle_sim::config::PartitionSize;
use untangle_sim::stats::{relative_error, stable_sum, weighted_mean};
use untangle_trace::bbv::{interval_vectors, BbvConfig};
use untangle_trace::file::{FileSource, TraceFileError, TraceWriter};
use untangle_trace::simpoint::{choose_slices, SimPointConfig, Slice};
use untangle_trace::TraceSource;
use untangle_workloads::scenario::{scenario_set, Scenario};

use crate::checkpoint::{self, FORMAT_VERSION};
use crate::parallel::{par_map_isolated, IsolatedRun, ItemFailure, RetryPolicy};
use crate::report::Json;

/// The schemes every scenario is swept over: the paper's four plus
/// SecDcp (which, with every domain defaulting to Sensitive, pins the
/// static floor — a useful reference column).
pub const SCHEMES: [SchemeKind; 5] = [
    SchemeKind::Static,
    SchemeKind::Time,
    SchemeKind::Untangle,
    SchemeKind::Shared,
    SchemeKind::SecDcp,
];

/// All knobs of one sweep. Every field is part of the checkpoint
/// fingerprint: change anything and previously-saved scenarios are
/// recomputed rather than resumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSettings {
    /// Scenarios to generate and evaluate (class-balanced round-robin).
    pub count: usize,
    /// Instructions per scenario trace.
    pub trace_instrs: u64,
    /// Instructions per on-disk trace block.
    pub block_instrs: u32,
    /// SimPoint profiling interval (the unit of slice replay).
    pub interval_instrs: u64,
    /// Maximum representative slices per trace.
    pub max_slices: usize,
    /// Every `validate_every`-th scenario also runs the full trace and
    /// records the sampling error. `0` disables validation.
    pub validate_every: usize,
}

impl SweepSettings {
    /// The full sweep: 120 scenarios of 2.4 M instructions. Six
    /// 25 k-instruction slices behind a 250 k warmup replay 1.65 M
    /// instructions per scheme — a 1.45x saving over the full trace
    /// that grows with trace length, since the warmup cost is flat.
    /// `validate_every` is deliberately coprime to the four-class
    /// round-robin: 10 would validate only the phase-shift and bursty
    /// classes, 9 walks through all four.
    pub fn full() -> Self {
        Self {
            count: 120,
            trace_instrs: 2_400_000,
            block_instrs: 4096,
            interval_instrs: 25_000,
            max_slices: 6,
            validate_every: 9,
        }
    }

    /// A CI-sized smoke sweep: two scenarios per class, short traces.
    pub fn smoke() -> Self {
        Self {
            count: 8,
            trace_instrs: 24_000,
            block_instrs: 1024,
            interval_instrs: 4_000,
            max_slices: 3,
            validate_every: 4,
        }
    }

    /// Warmup prefix replayed before a measured span: two full
    /// profiling intervals, floored at two average working-set fills,
    /// sized (together with the small machine of
    /// [`SweepSettings::runner_config`]) so the state a slice inherits
    /// — cache contents, the scheme's partition size, and its
    /// rate-limiter maturity — can actually be reconstructed before
    /// measurement starts. An under-warmed replay underestimates IPC on
    /// every warm-cache phase: at half an interval of warmup the
    /// sweep's validation error was 30–70%, dominated entirely by cold
    /// misses, and at one interval the 8 k-line shared cache was still
    /// cold enough to cost Shared/Time 12–50%. The 250 k-instruction
    /// floor is where the *scheme* trajectory converges, not the cache:
    /// a demand-driven scheme regrows its partition from the initial
    /// 128 kB share on every replay, but only when the warmup window
    /// contains demand — so the prefix must span the workload's phase
    /// recurrence (~125 k instructions for the phase-shifting class),
    /// not just the cache-fill cost. Prefix probes: 57–67% IPC error at
    /// a 50 k warmup, a heavily-weighted slice still 48% low at 150 k
    /// (its warmup window fell inside a low-demand phase), under 0.1%
    /// from 250 k on. The floor — not the two intervals — yields to a
    /// quarter of the trace so tiny smoke sweeps still measure more
    /// than they warm.
    pub fn warmup_instrs(&self) -> u64 {
        let floor = 250_000.min(self.trace_instrs / 4);
        (2 * self.interval_instrs).max(floor)
    }

    /// Whether the scenario at `index` runs the full-trace validation.
    pub fn validated(&self, index: usize) -> bool {
        self.validate_every > 0 && index.is_multiple_of(self.validate_every)
    }

    /// The runner configuration shared by every run of the sweep.
    ///
    /// Starts from the unit-test scale, then makes two changes that the
    /// sampling methodology depends on:
    ///
    /// * **A small machine.** The LLC shrinks to 512 kB with a 128 kB
    ///   initial share, so the *largest* cache state a dynamic scheme
    ///   can build (8 k lines) refills within one interval of warmup.
    ///   On the full-size machine a 2 MB share takes ~80 k instructions
    ///   to fill — longer than a whole slice — and replayed slices
    ///   systematically underestimate IPC by 30–70%.
    /// * **Tight assessment schedules.** Both schedules drop to an
    ///   eighth of the profiling interval, so even a single replayed
    ///   slice sees several assessments — without that, per-slice
    ///   leakage would quantize to zero and the sampling-error
    ///   measurement would be meaningless.
    pub fn runner_config(&self, kind: SchemeKind) -> RunnerConfig {
        let mut config = RunnerConfig::test_scale(kind, 1);
        config.machine.llc_bytes = 512 << 10;
        config.machine.umon_window = 1024;
        config.initial_partition = PartitionSize::KB128;
        config.params.heuristic.min_window_fill = config.machine.umon_window / 2;
        let assess = (self.interval_instrs / 8).max(256);
        config.params.progress_interval_instrs = assess;
        config.params.time_interval_cycles = assess as f64;
        config
    }

    fn bbv_config(&self) -> BbvConfig {
        BbvConfig {
            interval_instrs: self.interval_instrs,
            ..BbvConfig::default()
        }
    }

    fn simpoint_config(&self) -> SimPointConfig {
        SimPointConfig {
            max_slices: self.max_slices,
            ..SimPointConfig::default()
        }
    }
}

fn trace_err(e: TraceFileError) -> UntangleError {
    UntangleError::Io(e.to_string())
}

/// The on-disk path of one scenario's trace.
pub fn trace_path(dir: &Path, scenario: &Scenario) -> PathBuf {
    dir.join(format!("{}.trace", scenario.name()))
}

/// Generates (or resumes, or validates) the scenario's trace file.
///
/// Idempotent and crash-consistent: a fresh call generates the whole
/// trace, a call over a killed generation fast-forwards the
/// deterministic source by the durable prefix and appends the rest
/// (byte-identical to an uninterrupted run), and a call over a finished
/// file verifies its length and returns immediately. The header carries
/// the scenario metadata *and* the target length, so a settings change
/// surfaces as a header-mismatch error instead of silently mixing
/// layouts.
///
/// # Errors
///
/// [`UntangleError`] on IO failure, a mismatched header, or a finished
/// file of the wrong length.
pub fn generate_trace(
    dir: &Path,
    scenario: &Scenario,
    settings: &SweepSettings,
) -> Result<PathBuf, UntangleError> {
    let path = trace_path(dir, scenario);
    let meta = format!("{} instrs={}", scenario.meta(), settings.trace_instrs);
    let (mut writer, resume) =
        TraceWriter::open(&path, settings.block_instrs, &meta).map_err(trace_err)?;
    let already = match resume {
        untangle_trace::file::Resume::Complete { instrs } => {
            if instrs != settings.trace_instrs {
                return Err(UntangleError::InvalidConfig(format!(
                    "trace {} is finished with {instrs} instructions, sweep wants {}",
                    path.display(),
                    settings.trace_instrs
                )));
            }
            return Ok(path);
        }
        untangle_trace::file::Resume::Fresh => 0,
        untangle_trace::file::Resume::Partial { instrs } => {
            obs::counter_add("scenarios.traces_resumed", 1);
            obs::diag!(
                "resuming {} at instruction {instrs} of {}",
                path.display(),
                settings.trace_instrs
            );
            instrs
        }
    };
    let mut source = scenario.source();
    for _ in 0..already {
        if source.next_instr().is_none() {
            return Err(UntangleError::InvalidConfig(format!(
                "scenario {} ended before its durable prefix of {already}",
                scenario.name()
            )));
        }
    }
    let want = settings.trace_instrs - already;
    let appended = writer.append_source(&mut source, want).map_err(trace_err)?;
    if appended != want {
        return Err(UntangleError::InvalidConfig(format!(
            "scenario {} ended after {appended} of {want} instructions",
            scenario.name()
        )));
    }
    writer.finish().map_err(trace_err)?;
    obs::counter_add("scenarios.traces_generated", 1);
    Ok(path)
}

/// Profiles a finished trace and picks its weighted representative
/// slices.
///
/// # Errors
///
/// [`UntangleError`] if the trace cannot be opened or the read stream
/// poisons mid-profile.
pub fn sample_slices(path: &Path, settings: &SweepSettings) -> Result<Vec<Slice>, UntangleError> {
    let mut source = FileSource::open(path).map_err(trace_err)?;
    let total = source.info().total_instrs;
    let vectors = interval_vectors(&mut source, &settings.bbv_config());
    if let Some(e) = source.poisoned() {
        return Err(trace_err(e.clone()));
    }
    // Cluster only the intervals the full-trace reference measures:
    // everything from the warmup boundary on. Early intervals are both
    // outside the reference window and impossible to replay faithfully
    // (a slice at offset 0 has no prefix to warm from), so including
    // them skews the cluster weights against the comparable region.
    let interval = settings.interval_instrs;
    let base = (settings.warmup_instrs().min(total).div_ceil(interval) as usize)
        .min(vectors.len().saturating_sub(1));
    let mut slices = choose_slices(
        &vectors[base..],
        interval,
        total - base as u64 * interval,
        &settings.simpoint_config(),
    );
    for slice in &mut slices {
        slice.interval += base;
        slice.offset_instrs += base as u64 * interval;
    }
    Ok(slices)
}

fn single_domain_run(
    config: RunnerConfig,
    source: Box<dyn TraceSource>,
) -> Result<DomainReport, UntangleError> {
    let report = Runner::new(config, vec![source])?.run();
    report
        .domains
        .into_iter()
        .next()
        .ok_or_else(|| UntangleError::InvalidConfig("runner produced no domains".to_string()))
}

/// Replays `[offset, offset + len)` of the trace under `kind`: the
/// warmup prefix runs first with measurement off (instruction-count
/// warmup, so the measured window starts exactly at `offset`), then the
/// span is measured. Returns the domain report of the measured span
/// plus the total instructions simulated (warmup + span — the cost the
/// sampling is supposed to save).
fn measured_span(
    path: &Path,
    kind: SchemeKind,
    settings: &SweepSettings,
    offset: u64,
    len: u64,
) -> Result<(DomainReport, u64), UntangleError> {
    let prefix = settings.warmup_instrs().min(offset);
    let mut config = settings.runner_config(kind);
    config.warmup_instrs = Some(prefix);
    config.slice_instrs = len;
    let source = FileSource::open_slice(path, offset - prefix, prefix + len).map_err(trace_err)?;
    let report = single_domain_run(config, Box::new(source))?;
    Ok((report, prefix + len))
}

/// One scheme's sampled estimate for a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeEstimate {
    /// Scheme name (matches [`SchemeKind::name`]).
    pub kind: String,
    /// Sampled IPC estimate (cluster weights combined in CPI space).
    pub ipc: f64,
    /// Sampled leakage estimate in bits per assessment (weighted total
    /// bits over weighted total assessments).
    pub bits_per_assessment: f64,
    /// Total assessments across the replayed slices.
    pub assessments: u64,
    /// Maintain decisions across the replayed slices.
    pub maintains: u64,
    /// Instructions simulated to produce the estimate.
    pub simulated_instrs: u64,
}

/// The sampled-vs-full check for one scheme of a validated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeValidation {
    /// Scheme name.
    pub kind: String,
    /// IPC of the full-trace reference run.
    pub full_ipc: f64,
    /// Leakage of the reference run in bits per assessment.
    pub full_bits_per_assessment: f64,
    /// Relative IPC error of the sampled estimate.
    pub ipc_error: f64,
    /// Relative leakage error (absolute gap when the reference is 0).
    pub leakage_error: f64,
}

/// Everything the sweep records about one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Scenario id within the sweep.
    pub id: u32,
    /// Stable scenario name, e.g. `bursty_002`.
    pub name: String,
    /// Scenario class name.
    pub class: String,
    /// Trace length in instructions.
    pub trace_instrs: u64,
    /// Representative slices chosen by the sampler.
    pub slices: usize,
    /// Estimates in [`SCHEMES`] order.
    pub schemes: Vec<SchemeEstimate>,
    /// Full-trace validation, present on every `validate_every`-th
    /// scenario (in [`SCHEMES`] order, same length as `schemes`).
    pub validation: Vec<SchemeValidation>,
}

impl ScenarioResult {
    /// Instructions simulated across every scheme's sampled estimate.
    pub fn sampled_instrs(&self) -> u64 {
        self.schemes.iter().map(|s| s.simulated_instrs).sum()
    }

    /// Serializes to the checkpoint JSON payload.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Int(i64::from(self.id))),
            ("name", Json::Str(self.name.clone())),
            ("class", Json::Str(self.class.clone())),
            ("trace_instrs", Json::Int(self.trace_instrs as i64)),
            ("slices", Json::Int(self.slices as i64)),
            (
                "schemes",
                Json::Arr(
                    self.schemes
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("kind", Json::Str(s.kind.clone())),
                                ("ipc", Json::Num(s.ipc)),
                                ("bits_per_assessment", Json::Num(s.bits_per_assessment)),
                                ("assessments", Json::Int(s.assessments as i64)),
                                ("maintains", Json::Int(s.maintains as i64)),
                                ("simulated_instrs", Json::Int(s.simulated_instrs as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "validation",
                Json::Arr(
                    self.validation
                        .iter()
                        .map(|v| {
                            Json::obj(vec![
                                ("kind", Json::Str(v.kind.clone())),
                                ("full_ipc", Json::Num(v.full_ipc)),
                                (
                                    "full_bits_per_assessment",
                                    Json::Num(v.full_bits_per_assessment),
                                ),
                                ("ipc_error", Json::Num(v.ipc_error)),
                                ("leakage_error", Json::Num(v.leakage_error)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserializes a checkpoint JSON payload.
    ///
    /// # Errors
    ///
    /// Describes the first missing or mistyped field.
    pub fn from_json(json: &Json) -> Result<ScenarioResult, String> {
        let str_field = |j: &Json, key: &str| -> Result<String, String> {
            checkpoint::field(j, key)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("'{key}' is not a string"))
        };
        let num_field = |j: &Json, key: &str| -> Result<f64, String> {
            checkpoint::field(j, key)?
                .as_f64()
                .ok_or_else(|| format!("'{key}' is not a number"))
        };
        let int_field = |j: &Json, key: &str| -> Result<u64, String> {
            checkpoint::field(j, key)?
                .as_i64()
                .and_then(|i| u64::try_from(i).ok())
                .ok_or_else(|| format!("'{key}' is not a non-negative integer"))
        };
        let schemes = checkpoint::field(json, "schemes")?
            .as_arr()
            .ok_or("'schemes' is not an array")?
            .iter()
            .map(|s| {
                Ok(SchemeEstimate {
                    kind: str_field(s, "kind")?,
                    ipc: num_field(s, "ipc")?,
                    bits_per_assessment: num_field(s, "bits_per_assessment")?,
                    assessments: int_field(s, "assessments")?,
                    maintains: int_field(s, "maintains")?,
                    simulated_instrs: int_field(s, "simulated_instrs")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let validation = checkpoint::field(json, "validation")?
            .as_arr()
            .ok_or("'validation' is not an array")?
            .iter()
            .map(|v| {
                Ok(SchemeValidation {
                    kind: str_field(v, "kind")?,
                    full_ipc: num_field(v, "full_ipc")?,
                    full_bits_per_assessment: num_field(v, "full_bits_per_assessment")?,
                    ipc_error: num_field(v, "ipc_error")?,
                    leakage_error: num_field(v, "leakage_error")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ScenarioResult {
            id: int_field(json, "id")
                .and_then(|i| u32::try_from(i).map_err(|_| "'id' does not fit u32".to_string()))?,
            name: str_field(json, "name")?,
            class: str_field(json, "class")?,
            trace_instrs: int_field(json, "trace_instrs")?,
            slices: checkpoint::field(json, "slices")?
                .as_i64()
                .and_then(|i| usize::try_from(i).ok())
                .ok_or("'slices' is not a non-negative integer")?,
            schemes,
            validation,
        })
    }
}

fn estimate_scheme(
    path: &Path,
    kind: SchemeKind,
    slices: &[Slice],
    settings: &SweepSettings,
) -> Result<SchemeEstimate, UntangleError> {
    // Every slice measures the same number of instructions, so the
    // full-trace IPC (total instructions over total cycles) is the
    // weight-combined *CPI*, not IPC: cycles add across intervals while
    // a high-IPC slice contributes few of them. Averaging IPC directly
    // overestimates phase-shifting traces by the arithmetic/harmonic
    // mean gap (nearly 2x on synthetic phase traces). Leakage combines
    // the same way: weighted total bits over weighted total
    // assessments, since both are per-interval counts.
    let mut cpi_pairs = Vec::with_capacity(slices.len());
    let mut bit_pairs = Vec::with_capacity(slices.len());
    let mut assess_pairs = Vec::with_capacity(slices.len());
    let mut assessments = 0u64;
    let mut maintains = 0u64;
    let mut simulated = 0u64;
    for slice in slices {
        let (report, instrs) =
            measured_span(path, kind, settings, slice.offset_instrs, slice.len_instrs)?;
        let ipc = report.ipc();
        if !(ipc.is_finite() && ipc > 0.0) {
            return Err(UntangleError::InvalidConfig(format!(
                "slice at instruction {} of {} measured a non-positive IPC ({ipc})",
                slice.offset_instrs,
                path.display()
            )));
        }
        cpi_pairs.push((ipc.recip(), slice.weight));
        bit_pairs.push((report.leakage.total_bits, slice.weight));
        assess_pairs.push((report.leakage.assessments as f64, slice.weight));
        assessments += report.leakage.assessments;
        maintains += report.leakage.maintains;
        simulated += instrs;
    }
    let combined = |pairs: &[(f64, f64)]| -> Result<f64, UntangleError> {
        weighted_mean(pairs).ok_or_else(|| {
            UntangleError::InvalidConfig(format!(
                "ill-posed weighted mean over {} slices of {}",
                pairs.len(),
                path.display()
            ))
        })
    };
    let mean_assess = combined(&assess_pairs)?;
    let bits_per_assessment = if mean_assess > 0.0 {
        combined(&bit_pairs)? / mean_assess
    } else {
        0.0
    };
    Ok(SchemeEstimate {
        kind: kind.name().to_string(),
        ipc: combined(&cpi_pairs)?.recip(),
        bits_per_assessment,
        assessments,
        maintains,
        simulated_instrs: simulated,
    })
}

fn validate_scheme(
    path: &Path,
    kind: SchemeKind,
    estimate: &SchemeEstimate,
    settings: &SweepSettings,
) -> Result<SchemeValidation, UntangleError> {
    let warmup = settings.warmup_instrs().min(settings.trace_instrs);
    let (full, _) = measured_span(path, kind, settings, warmup, settings.trace_instrs - warmup)?;
    let full_ipc = full.ipc();
    let full_bits = full.leakage.bits_per_assessment();
    let err = |est: f64, reference: f64| -> Result<f64, UntangleError> {
        relative_error(est, reference).ok_or_else(|| {
            UntangleError::InvalidConfig(format!(
                "non-finite validation pair ({est}, {reference}) for {}",
                kind.name()
            ))
        })
    };
    Ok(SchemeValidation {
        kind: kind.name().to_string(),
        full_ipc,
        full_bits_per_assessment: full_bits,
        ipc_error: err(estimate.ipc, full_ipc)?,
        leakage_error: err(estimate.bits_per_assessment, full_bits)?,
    })
}

/// Runs one scenario end to end: generate (or resume) the trace, pick
/// slices, estimate every scheme, and — when `validate` — measure the
/// estimates against full-trace references.
///
/// # Errors
///
/// [`UntangleError`] on any stage failure; the sweep records it and
/// moves on.
pub fn evaluate_scenario(
    trace_dir: &Path,
    scenario: &Scenario,
    settings: &SweepSettings,
    validate: bool,
) -> Result<ScenarioResult, UntangleError> {
    let path = generate_trace(trace_dir, scenario, settings)?;
    let slices = sample_slices(&path, settings)?;
    if slices.is_empty() {
        return Err(UntangleError::InvalidConfig(format!(
            "sampler produced no slices for {}",
            scenario.name()
        )));
    }
    let mut schemes = Vec::with_capacity(SCHEMES.len());
    for kind in SCHEMES {
        schemes.push(estimate_scheme(&path, kind, &slices, settings)?);
    }
    let mut validation = Vec::new();
    if validate {
        for (kind, estimate) in SCHEMES.iter().zip(&schemes) {
            validation.push(validate_scheme(&path, *kind, estimate, settings)?);
        }
    }
    Ok(ScenarioResult {
        id: scenario.id,
        name: scenario.name(),
        class: scenario.class.name().to_string(),
        trace_instrs: settings.trace_instrs,
        slices: slices.len(),
        schemes,
        validation,
    })
}

/// The fingerprint tying a scenario checkpoint to one exact sweep
/// configuration: both format versions (checkpoint layout and trace
/// encoding), the scenario identity and seed, every [`SweepSettings`]
/// field, whether this scenario validates, and the scheme list.
pub fn scenario_fingerprint(
    scenario: &Scenario,
    settings: &SweepSettings,
    validate: bool,
) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |bytes: &[u8]| h = checkpoint::fnv1a(h, bytes);
    fold(&u64::from(FORMAT_VERSION).to_le_bytes());
    fold(&u64::from(untangle_trace::file::FORMAT_VERSION).to_le_bytes());
    fold(&u64::from(scenario.id).to_le_bytes());
    fold(&scenario.seed().to_le_bytes());
    fold(scenario.class.name().as_bytes());
    fold(&(settings.count as u64).to_le_bytes());
    fold(&settings.trace_instrs.to_le_bytes());
    fold(&u64::from(settings.block_instrs).to_le_bytes());
    fold(&settings.interval_instrs.to_le_bytes());
    fold(&(settings.max_slices as u64).to_le_bytes());
    fold(&(settings.validate_every as u64).to_le_bytes());
    fold(&[u8::from(validate)]);
    for kind in SCHEMES {
        fold(kind.name().as_bytes());
    }
    format!("{h:016x}")
}

/// Durable per-scenario checkpoints, one [`Slot`] file per scenario.
#[derive(Debug, Clone)]
pub struct ScenarioStore {
    dir: PathBuf,
}

impl ScenarioStore {
    /// Opens (creating if needed) the checkpoint directory.
    ///
    /// # Errors
    ///
    /// [`UntangleError::Checkpoint`] when the directory cannot be
    /// created.
    pub fn new(dir: impl Into<PathBuf>) -> Result<ScenarioStore, UntangleError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| UntangleError::Checkpoint {
            path: dir.display().to_string(),
            reason: format!("cannot create directory: {e}"),
        })?;
        Ok(ScenarioStore { dir })
    }

    /// The checkpoint path for one scenario.
    pub fn path_for(&self, id: u32) -> PathBuf {
        self.dir.join(format!("scenario{id:03}.json"))
    }

    /// Persists one completed scenario, tagged with its fingerprint.
    ///
    /// # Errors
    ///
    /// [`UntangleError::Checkpoint`] on I/O failure; callers treat this
    /// as best-effort.
    pub fn save(&self, result: &ScenarioResult, fingerprint: &str) -> Result<(), UntangleError> {
        let path = self.path_for(result.id);
        let payload = Json::obj(vec![
            ("version", Json::Int(i64::from(FORMAT_VERSION))),
            ("fingerprint", Json::Str(fingerprint.to_string())),
            ("result", result.to_json()),
        ]);
        Slot::new(&path)
            .store((payload.render() + "\n").as_bytes())
            .map_err(|e| UntangleError::Checkpoint {
                path: path.display().to_string(),
                reason: e.to_string(),
            })
    }

    /// Loads the checkpoint for scenario `id`. `Ok(None)` means
    /// "recompute, nothing wrong" (missing file, or written under
    /// different settings).
    ///
    /// # Errors
    ///
    /// [`UntangleError::Checkpoint`] when the file is present but
    /// damaged — a recoverable diagnostic, exactly like
    /// [`crate::checkpoint::CheckpointStore::load`].
    pub fn load(
        &self,
        id: u32,
        fingerprint: &str,
    ) -> Result<Option<ScenarioResult>, UntangleError> {
        let path = self.path_for(id);
        let corrupt = |reason: String| UntangleError::Checkpoint {
            path: path.display().to_string(),
            reason,
        };
        let bytes = match Slot::new(&path)
            .load()
            .map_err(|e| corrupt(e.to_string()))?
        {
            SlotState::Missing => return Ok(None),
            SlotState::Corrupt { reason } => return Err(corrupt(reason)),
            SlotState::Valid(bytes) => bytes,
        };
        let text =
            String::from_utf8(bytes).map_err(|_| corrupt("payload is not UTF-8".to_string()))?;
        let json = Json::parse(&text).map_err(|e| corrupt(format!("unparsable payload: {e}")))?;
        let matches = json.get("version").and_then(Json::as_i64) == Some(i64::from(FORMAT_VERSION))
            && json.get("fingerprint").and_then(Json::as_str) == Some(fingerprint);
        if !matches {
            return Ok(None);
        }
        let result = json
            .get("result")
            .ok_or_else(|| corrupt("missing field 'result'".to_string()))
            .and_then(|r| ScenarioResult::from_json(r).map_err(corrupt))?;
        Ok((result.id == id).then_some(result))
    }
}

/// What the sweep produced: one slot per scenario (`None` = failed every
/// attempt), panic isolation records, typed per-scenario errors, and the
/// resume count.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Results in scenario order; `None` where the scenario failed.
    pub results: Vec<Option<ScenarioResult>>,
    /// Worker panics caught by the isolation layer.
    pub failures: Vec<ItemFailure>,
    /// Typed errors, as `(scenario index, message)`.
    pub errors: Vec<(usize, String)>,
    /// Scenarios restored from checkpoints instead of recomputed.
    pub resumed: usize,
}

impl SweepOutcome {
    /// Whether every scenario completed.
    pub fn is_complete(&self) -> bool {
        self.results.iter().all(Option::is_some)
    }
}

/// Runs the whole sweep: generation, sampling, per-scheme estimation,
/// and validation for all `settings.count` scenarios, fanned out with
/// per-item panic isolation and checkpoint resume.
///
/// Trace files land in `<out>/traces/`, checkpoints in
/// `<out>/checkpoints/`. `resume` controls whether existing checkpoints
/// are consulted; they are always written.
///
/// # Errors
///
/// [`UntangleError`] only when the output directories cannot be
/// created; per-scenario failures are recorded in the outcome instead.
pub fn run_scenario_sweep(
    out_dir: &Path,
    settings: &SweepSettings,
    store: Option<&ScenarioStore>,
    resume: bool,
    policy: RetryPolicy,
) -> Result<SweepOutcome, UntangleError> {
    let trace_dir = out_dir.join("traces");
    std::fs::create_dir_all(&trace_dir)?;
    let scenarios = scenario_set(settings.count);
    let resumed = AtomicUsize::new(0);

    let run: IsolatedRun<Result<ScenarioResult, UntangleError>> =
        par_map_isolated(scenarios.len(), policy, |i| {
            let scenario = &scenarios[i];
            let validate = settings.validated(i);
            let fingerprint = scenario_fingerprint(scenario, settings, validate);
            if resume {
                if let Some(store) = store {
                    match store.load(scenario.id, &fingerprint) {
                        Ok(Some(result)) => {
                            resumed.fetch_add(1, Ordering::Relaxed);
                            return Ok(result);
                        }
                        Ok(None) => {}
                        Err(e) => {
                            obs::counter_add("scenarios.checkpoint_corrupt", 1);
                            obs::diag!("discarding damaged checkpoint: {e}");
                        }
                    }
                }
            }
            let result = evaluate_scenario(&trace_dir, scenario, settings, validate)?;
            if let Some(store) = store {
                if let Err(e) = store.save(&result, &fingerprint) {
                    obs::diag!("checkpoint save failed (continuing): {e}");
                }
            }
            Ok(result)
        });

    let mut results = Vec::with_capacity(run.results.len());
    let mut errors = Vec::new();
    for (i, slot) in run.results.into_iter().enumerate() {
        match slot {
            Some(Ok(result)) => results.push(Some(result)),
            Some(Err(e)) => {
                errors.push((i, e.to_string()));
                results.push(None);
            }
            None => results.push(None),
        }
    }
    Ok(SweepOutcome {
        results,
        failures: run.failures,
        errors,
        resumed: resumed.into_inner(),
    })
}

/// Per-scheme aggregate over the whole sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeAggregate {
    /// Scheme name.
    pub kind: String,
    /// Mean sampled IPC across completed scenarios.
    pub mean_ipc: f64,
    /// Mean sampled leakage (bits per assessment).
    pub mean_bits_per_assessment: f64,
    /// Validated scenarios contributing to the error statistics.
    pub validated: usize,
    /// Mean relative IPC error on the validation subset.
    pub mean_ipc_error: f64,
    /// Worst relative IPC error on the validation subset.
    pub max_ipc_error: f64,
    /// Mean leakage error on the validation subset.
    pub mean_leakage_error: f64,
    /// Worst leakage error on the validation subset.
    pub max_leakage_error: f64,
}

/// Sweep-level aggregates for the report and the text tables.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSummary {
    /// Scenarios attempted.
    pub scenarios: usize,
    /// Scenarios that completed.
    pub completed: usize,
    /// Instructions simulated by the sampled estimates.
    pub sampled_instrs: u64,
    /// Instructions a full-trace sweep of the same runs would simulate
    /// (`completed × schemes × trace length`).
    pub full_instrs: u64,
    /// Aggregates in [`SCHEMES`] order.
    pub per_scheme: Vec<SchemeAggregate>,
}

impl SweepSummary {
    /// Simulation-cost ratio of sampled replay vs full traces.
    pub fn speedup(&self) -> f64 {
        if self.sampled_instrs == 0 {
            0.0
        } else {
            self.full_instrs as f64 / self.sampled_instrs as f64
        }
    }

    /// Worst IPC error across schemes (the headline acceptance number).
    pub fn worst_ipc_error(&self) -> f64 {
        self.per_scheme
            .iter()
            .map(|s| s.max_ipc_error)
            .fold(0.0, f64::max)
    }

    /// Worst leakage error across schemes.
    pub fn worst_leakage_error(&self) -> f64 {
        self.per_scheme
            .iter()
            .map(|s| s.max_leakage_error)
            .fold(0.0, f64::max)
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        stable_sum(values) / values.len() as f64
    }
}

/// Aggregates completed scenario results into the sweep summary.
pub fn summarize(results: &[Option<ScenarioResult>], settings: &SweepSettings) -> SweepSummary {
    let completed: Vec<&ScenarioResult> = results.iter().flatten().collect();
    let mut per_scheme = Vec::with_capacity(SCHEMES.len());
    for (k, kind) in SCHEMES.iter().enumerate() {
        let ipcs: Vec<f64> = completed
            .iter()
            .filter_map(|r| r.schemes.get(k).map(|s| s.ipc))
            .collect();
        let bits: Vec<f64> = completed
            .iter()
            .filter_map(|r| r.schemes.get(k).map(|s| s.bits_per_assessment))
            .collect();
        let ipc_errors: Vec<f64> = completed
            .iter()
            .filter_map(|r| r.validation.get(k).map(|v| v.ipc_error))
            .collect();
        let leak_errors: Vec<f64> = completed
            .iter()
            .filter_map(|r| r.validation.get(k).map(|v| v.leakage_error))
            .collect();
        per_scheme.push(SchemeAggregate {
            kind: kind.name().to_string(),
            mean_ipc: mean(&ipcs),
            mean_bits_per_assessment: mean(&bits),
            validated: ipc_errors.len(),
            mean_ipc_error: mean(&ipc_errors),
            max_ipc_error: ipc_errors.iter().copied().fold(0.0, f64::max),
            mean_leakage_error: mean(&leak_errors),
            max_leakage_error: leak_errors.iter().copied().fold(0.0, f64::max),
        });
    }
    SweepSummary {
        scenarios: results.len(),
        completed: completed.len(),
        sampled_instrs: completed.iter().map(|r| r.sampled_instrs()).sum(),
        full_instrs: completed.len() as u64 * SCHEMES.len() as u64 * settings.trace_instrs,
        per_scheme,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use untangle_trace::file::Resume;
    use untangle_workloads::scenario::ScenarioClass;

    fn tiny_settings() -> SweepSettings {
        SweepSettings {
            count: 2,
            trace_instrs: 6_000,
            block_instrs: 512,
            interval_instrs: 2_000,
            max_slices: 2,
            validate_every: 2,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("untangle-scenarios-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn scenario(id: u32) -> Scenario {
        Scenario {
            id,
            class: ScenarioClass::ALL[id as usize % ScenarioClass::ALL.len()],
        }
    }

    #[test]
    fn generation_is_idempotent_and_resumes_partial_files() {
        let settings = tiny_settings();
        let dir = temp_dir("gen");
        let s = scenario(1);

        let path = generate_trace(&dir, &s, &settings).expect("generate");
        let clean = std::fs::read(&path).expect("bytes");
        // A second call verifies and leaves the file untouched.
        generate_trace(&dir, &s, &settings).expect("idempotent");
        assert_eq!(std::fs::read(&path).expect("bytes"), clean);

        // Simulate a crashed generation: a partial file with only a
        // prefix of durable blocks, then resume through generate_trace.
        let dir2 = temp_dir("gen-resume");
        let meta = format!("{} instrs={}", s.meta(), settings.trace_instrs);
        let path2 = trace_path(&dir2, &s);
        {
            let (mut w, resume) =
                TraceWriter::open(&path2, settings.block_instrs, &meta).expect("open");
            assert_eq!(resume, Resume::Fresh);
            let mut src = s.source();
            w.append_source(&mut src, 2_300).expect("partial append");
            // Dropped without finish(): 4 durable blocks, no trailer.
        }
        generate_trace(&dir2, &s, &settings).expect("resume");
        assert_eq!(
            std::fs::read(&path2).expect("bytes"),
            clean,
            "resumed trace must be byte-identical to the uninterrupted one"
        );
    }

    #[test]
    fn mismatched_settings_are_rejected_not_mixed() {
        let settings = tiny_settings();
        let dir = temp_dir("gen-mismatch");
        let s = scenario(2);
        generate_trace(&dir, &s, &settings).expect("generate");
        let longer = SweepSettings {
            trace_instrs: settings.trace_instrs * 2,
            ..settings
        };
        let e = generate_trace(&dir, &s, &longer).expect_err("must reject");
        assert!(e.to_string().contains("mismatch"), "{e}");
    }

    #[test]
    fn evaluation_is_deterministic_and_validates() {
        let settings = tiny_settings();
        let dir = temp_dir("eval");
        let s = scenario(0);
        let a = evaluate_scenario(&dir, &s, &settings, true).expect("evaluate");
        let b = evaluate_scenario(&dir, &s, &settings, true).expect("evaluate again");
        assert_eq!(a, b, "evaluation must be bit-stable");
        assert_eq!(a.schemes.len(), SCHEMES.len());
        assert_eq!(a.validation.len(), SCHEMES.len());
        assert!(a.slices >= 1 && a.slices <= settings.max_slices);
        // Static never assesses; Time always does.
        assert_eq!(a.schemes[0].assessments, 0);
        assert!(a.schemes[1].assessments > 0, "{:?}", a.schemes[1]);
        for v in &a.validation {
            assert!(v.ipc_error.is_finite() && v.ipc_error >= 0.0, "{v:?}");
            assert!(
                v.leakage_error.is_finite() && v.leakage_error >= 0.0,
                "{v:?}"
            );
        }
    }

    #[test]
    fn result_json_roundtrips_bit_identically() {
        let settings = tiny_settings();
        let dir = temp_dir("json");
        let s = scenario(3);
        let result = evaluate_scenario(&dir, &s, &settings, true).expect("evaluate");
        let parsed =
            ScenarioResult::from_json(&Json::parse(&result.to_json().render()).expect("parse"))
                .expect("from_json");
        assert_eq!(parsed, result);
    }

    #[test]
    fn store_roundtrips_and_fingerprint_separates_settings() {
        let settings = tiny_settings();
        let dir = temp_dir("store");
        let s = scenario(1);
        let result = evaluate_scenario(&dir, &s, &settings, false).expect("evaluate");
        let store = ScenarioStore::new(dir.join("checkpoints")).expect("store");
        let fp = scenario_fingerprint(&s, &settings, false);
        assert!(store.load(1, &fp).expect("empty").is_none());
        store.save(&result, &fp).expect("save");
        assert_eq!(store.load(1, &fp).expect("load"), Some(result));

        // Any settings change — or the validation flag — recomputes.
        let other = SweepSettings {
            max_slices: settings.max_slices + 1,
            ..settings.clone()
        };
        assert_ne!(fp, scenario_fingerprint(&s, &other, false));
        assert_ne!(fp, scenario_fingerprint(&s, &settings, true));
        assert!(store
            .load(1, &scenario_fingerprint(&s, &other, false))
            .expect("mismatch is clean")
            .is_none());

        // Damage is detected, not parsed.
        std::fs::write(store.path_for(1), b"{ torn").expect("damage");
        assert!(matches!(
            store.load(1, &fp),
            Err(UntangleError::Checkpoint { .. })
        ));
    }

    #[test]
    fn sweep_completes_resumes_and_summarizes() {
        let settings = tiny_settings();
        let out = temp_dir("sweep");
        let store = ScenarioStore::new(out.join("checkpoints")).expect("store");
        let outcome =
            run_scenario_sweep(&out, &settings, Some(&store), false, RetryPolicy::default())
                .expect("sweep");
        assert!(outcome.is_complete(), "{:?}", outcome.errors);
        assert_eq!(outcome.resumed, 0);

        let summary = summarize(&outcome.results, &settings);
        assert_eq!(summary.scenarios, settings.count);
        assert_eq!(summary.completed, settings.count);
        assert_eq!(summary.per_scheme.len(), SCHEMES.len());
        // At this tiny scale (3 intervals, up to 2 slices + probe
        // warmup) sampling is *not* cheaper than the full trace; the
        // speedup claim is asserted on real settings by exp_scenarios.
        assert!(summary.sampled_instrs > 0 && summary.speedup() > 0.0);
        // Scenario 0 validated (validate_every = 2 over ids 0 and 1).
        assert_eq!(summary.per_scheme[0].validated, 1);

        // A resumed sweep restores every scenario from checkpoints and
        // produces identical results.
        let again = run_scenario_sweep(&out, &settings, Some(&store), true, RetryPolicy::default())
            .expect("resumed sweep");
        assert_eq!(again.resumed, settings.count);
        assert_eq!(again.results, outcome.results);
    }
}
