//! Criterion benchmarks of whole scheme evaluations: one short run per
//! scheme kind, exercising metric, schedule, heuristic, leakage
//! accounting, and the multicore system together.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use untangle_core::runner::{Runner, RunnerConfig};
use untangle_core::scheme::SchemeKind;
use untangle_trace::synth::{WorkingSetConfig, WorkingSetModel};
use untangle_trace::TraceSource;

fn short_config(kind: SchemeKind) -> RunnerConfig {
    let mut config = RunnerConfig::test_scale(kind, 1);
    config.slice_instrs = 50_000;
    config
}

fn source() -> Box<dyn TraceSource> {
    Box::new(WorkingSetModel::new(
        WorkingSetConfig {
            working_set_bytes: 1 << 20,
            ..WorkingSetConfig::default()
        },
        7,
    ))
}

fn bench_schemes(c: &mut Criterion) {
    // Runner::new for Untangle precomputes the rate table in the
    // (untimed) setup closure; keep the sample count small so the
    // suite stays fast.
    let mut c = c.benchmark_group("schemes");
    c.sample_size(10);
    for kind in SchemeKind::ALL {
        c.bench_function(format!("run_50k_instrs_{}", kind.name().to_lowercase()), |b| {
            b.iter_batched(
                || Runner::new(short_config(kind), vec![source()]),
                |runner| runner.run(),
                BatchSize::LargeInput,
            )
        });
    }
    c.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
