//! Benchmarks of whole scheme evaluations: one short run per scheme
//! kind, exercising metric, schedule, heuristic, leakage accounting, and
//! the multicore system together. Uses the in-repo harness
//! (`--features bench-harness`):
//!
//! `cargo bench -p untangle-bench --features bench-harness --bench schemes`

use untangle_bench::harness::bench;
use untangle_core::runner::{Runner, RunnerConfig};
use untangle_core::scheme::SchemeKind;
use untangle_trace::synth::{WorkingSetConfig, WorkingSetModel};
use untangle_trace::TraceSource;

fn short_config(kind: SchemeKind) -> RunnerConfig {
    let mut config = RunnerConfig::test_scale(kind, 1);
    config.slice_instrs = 50_000;
    config
}

fn source() -> Box<dyn TraceSource> {
    Box::new(WorkingSetModel::new(
        WorkingSetConfig {
            working_set_bytes: 1 << 20,
            ..WorkingSetConfig::default()
        },
        7,
    ))
}

fn main() {
    // Runner::new for Untangle precomputes the rate table; after the
    // first build the global cache answers it, so construction cost is
    // included but flat across iterations.
    for kind in SchemeKind::ALL {
        let label = format!("run_50k_instrs_{}", kind.name().to_lowercase());
        println!(
            "{}",
            bench(&label, 1, 10, || {
                Runner::new(short_config(kind), vec![source()])
                    .expect("runner")
                    .run();
            })
            .render()
        );
    }
}
