//! Benchmarks of the Appendix-A machinery: the Dinkelbach `R_max`
//! solver (cold and warm-started), rate-table precompute, and the
//! entropy kernels they lean on. Uses the in-repo harness
//! (`--features bench-harness`):
//!
//! `cargo bench -p untangle-bench --features bench-harness --bench rmax`

use untangle_bench::harness::bench;
use untangle_info::rate_table::{RateTable, RateTableConfig};
use untangle_info::{Channel, ChannelConfig, DelayDist, Dist, RmaxSolver, WarmStart};

fn channel() -> Channel {
    Channel::new(ChannelConfig::evenly_spaced(16, 8, 16, DelayDist::uniform(16).unwrap()).unwrap())
        .unwrap()
}

fn main() {
    let ch = channel();
    let solver = RmaxSolver::new(ch.clone());
    println!(
        "{}",
        bench("rmax_solve_8sym_delay16", 1, 10, || {
            solver.solve().unwrap();
        })
        .render()
    );

    let warm = WarmStart::from_result(
        &RmaxSolver::new(
            Channel::new(
                ChannelConfig::evenly_spaced(8, 8, 16, DelayDist::uniform(16).unwrap()).unwrap(),
            )
            .unwrap(),
        )
        .solve()
        .unwrap(),
    );
    println!(
        "{}",
        bench("rmax_solve_8sym_delay16_warm", 1, 10, || {
            solver.solve_warm(Some(&warm)).unwrap();
        })
        .render()
    );

    let cfg = RateTableConfig {
        cooldown: 16,
        n_symbols: 8,
        step: 16,
        delay: DelayDist::uniform(16).unwrap(),
        max_maintains: 4,
    };
    println!(
        "{}",
        bench("rate_table_precompute_5_entries", 1, 5, || {
            RateTable::precompute(&cfg).unwrap();
        })
        .render()
    );

    let input = Dist::uniform(8).unwrap();
    println!(
        "{}",
        bench("channel_output_dist", 100, 10_000, || {
            ch.output_dist(&input).unwrap();
        })
        .render()
    );
    println!(
        "{}",
        bench("channel_objective_and_gradient", 100, 10_000, || {
            ch.objective_and_gradient(&input, 0.05).unwrap();
        })
        .render()
    );
}
