//! Criterion benchmarks of the Appendix-A machinery: the Dinkelbach
//! `R_max` solver, rate-table precompute, and the entropy kernels they
//! lean on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use untangle_info::rate_table::{RateTable, RateTableConfig};
use untangle_info::{Channel, ChannelConfig, DelayDist, Dist, RmaxSolver};

fn channel() -> Channel {
    Channel::new(
        ChannelConfig::evenly_spaced(16, 8, 16, DelayDist::uniform(16).unwrap()).unwrap(),
    )
    .unwrap()
}

fn bench_rmax(c: &mut Criterion) {
    let ch = channel();
    c.bench_function("rmax_solve_8sym_delay16", |b| {
        b.iter_batched(
            || RmaxSolver::new(ch.clone()),
            |solver| solver.solve().unwrap(),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("rate_table_precompute_5_entries", |b| {
        let cfg = RateTableConfig {
            cooldown: 16,
            n_symbols: 8,
            step: 16,
            delay: DelayDist::uniform(16).unwrap(),
            max_maintains: 4,
        };
        b.iter(|| RateTable::precompute(&cfg).unwrap())
    });

    c.bench_function("channel_output_dist", |b| {
        let input = Dist::uniform(8).unwrap();
        b.iter(|| ch.output_dist(&input).unwrap())
    });

    c.bench_function("channel_objective_and_gradient", |b| {
        let input = Dist::uniform(8).unwrap();
        b.iter(|| ch.objective_and_gradient(&input, 0.05).unwrap())
    });
}

criterion_group!(benches, bench_rmax);
criterion_main!(benches);
