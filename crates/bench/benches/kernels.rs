//! Microbenchmarks of the four solver hot-path kernels (entropy,
//! softmax, reductions, channel matrix-apply) in both variants, plus
//! the batched-vs-sequential rate-table precompute. Uses the in-repo
//! harness (`--features bench-harness`):
//!
//! `cargo bench -p untangle-bench --features bench-harness --bench kernels`
//!
//! Build with `--features simd` to also route the dispatched solver
//! through the lane variants; the scalar/lanes rows below always
//! benchmark both variants directly, regardless of dispatch mode.

use untangle_bench::harness::bench;
use untangle_info::kernels;
use untangle_info::rate_table::{RateTable, RateTableConfig};
use untangle_info::{DelayDist, DinkelbachOptions};

/// Deterministic pseudo-random positive weights (splitmix64).
fn weights(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            ((z >> 11) as f64 + 1.0) / (1u64 << 53) as f64
        })
        .collect()
}

fn main() {
    // Vector length in the ballpark of the production channels'
    // output alphabets (a few dozen symbols).
    const LEN: usize = 48;
    let xs = weights(0x11, LEN);
    let ys = weights(0x22, LEN);
    let norm: f64 = xs.iter().sum();
    let probs: Vec<f64> = xs.iter().map(|x| x / norm).collect();

    println!(
        "{}",
        bench("entropy_scalar", 1_000, 200_000, || {
            std::hint::black_box(kernels::scalar::entropy_bits(std::hint::black_box(&probs)));
        })
        .render()
    );
    println!(
        "{}",
        bench("entropy_lanes", 1_000, 200_000, || {
            std::hint::black_box(kernels::lanes::entropy_bits(std::hint::black_box(&probs)));
        })
        .render()
    );

    let mut log_table = Vec::new();
    println!(
        "{}",
        bench("entropy_and_logs_scalar", 1_000, 200_000, || {
            std::hint::black_box(kernels::scalar::entropy_and_logs(
                std::hint::black_box(&probs),
                &mut log_table,
            ));
        })
        .render()
    );
    println!(
        "{}",
        bench("entropy_and_logs_lanes", 1_000, 200_000, || {
            std::hint::black_box(kernels::lanes::entropy_and_logs(
                std::hint::black_box(&probs),
                &mut log_table,
            ));
        })
        .render()
    );

    let mut logits = weights(0x33, LEN);
    println!(
        "{}",
        bench("softmax_scalar", 1_000, 200_000, || {
            logits.copy_from_slice(&xs);
            kernels::scalar::softmax_inplace(std::hint::black_box(&mut logits));
        })
        .render()
    );
    println!(
        "{}",
        bench("softmax_lanes", 1_000, 200_000, || {
            logits.copy_from_slice(&xs);
            kernels::lanes::softmax_inplace(std::hint::black_box(&mut logits));
        })
        .render()
    );

    println!(
        "{}",
        bench("dot_and_max_scalar", 1_000, 500_000, || {
            std::hint::black_box(kernels::scalar::dot_and_max(
                std::hint::black_box(&xs),
                std::hint::black_box(&ys),
            ));
        })
        .render()
    );
    println!(
        "{}",
        bench("dot_and_max_lanes", 1_000, 500_000, || {
            std::hint::black_box(kernels::lanes::dot_and_max(
                std::hint::black_box(&xs),
                std::hint::black_box(&ys),
            ));
        })
        .render()
    );

    // Channel matrix-apply: one axpy per input symbol, the shape
    // `Channel::output_weights_into` executes.
    let rows: Vec<Vec<f64>> = (0..8).map(|r| weights(0x44 + r, LEN)).collect();
    let row_probs = weights(0x55, 8);
    let mut out = vec![0.0; LEN];
    println!(
        "{}",
        bench("matrix_apply_scalar", 1_000, 100_000, || {
            out.iter_mut().for_each(|v| *v = 0.0);
            for (px, row) in row_probs.iter().zip(&rows) {
                kernels::scalar::axpy(&mut out, *px, row);
            }
            std::hint::black_box(&out);
        })
        .render()
    );
    println!(
        "{}",
        bench("matrix_apply_lanes", 1_000, 100_000, || {
            out.iter_mut().for_each(|v| *v = 0.0);
            for (px, row) in row_probs.iter().zip(&rows) {
                kernels::lanes::axpy(&mut out, *px, row);
            }
            std::hint::black_box(&out);
        })
        .render()
    );

    // End-to-end: one production-shaped rate table, sequential
    // warm-chain vs the batched sweep.
    let cfg = RateTableConfig {
        cooldown: 16,
        n_symbols: 8,
        step: 16,
        delay: DelayDist::uniform(16).unwrap(),
        max_maintains: 16,
    };
    let opts = DinkelbachOptions {
        tolerance: 1e-7,
        max_inner_iterations: 800,
        inner_gap_tolerance: 1e-9,
        upper_bound_margin: 1e-4,
        ..DinkelbachOptions::default()
    };
    println!(
        "{}",
        bench("rate_table_sequential_17_entries", 1, 5, || {
            RateTable::precompute_with_stats(&cfg, &opts, true).unwrap();
        })
        .render()
    );
    println!(
        "{}",
        bench("rate_table_batched_17_entries", 1, 5, || {
            RateTable::precompute_batched(&cfg, &opts).unwrap();
        })
        .render()
    );
}
