//! Criterion benchmarks of the simulation substrate: cache accesses,
//! UMON observation, and full-system stepping — the inner loops every
//! experiment spends its time in.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use untangle_sim::cache::SetAssocCache;
use untangle_sim::config::{CacheGeometry, MachineConfig, PartitionSize};
use untangle_sim::system::{LlcMode, System};
use untangle_sim::umon::UtilityMonitor;
use untangle_trace::synth::{TraceRng, WorkingSetConfig, WorkingSetModel};
use untangle_trace::LineAddr;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("llc_access_2mb_partition", |b| {
        let mut cache = SetAssocCache::new(CacheGeometry {
            sets: PartitionSize::MB2.sets(16),
            ways: 16,
        });
        let mut rng = TraceRng::new(1);
        b.iter(|| {
            for _ in 0..10_000 {
                cache.access(LineAddr::new(rng.below(60_000)));
            }
        })
    });

    group.bench_function("umon_observe", |b| {
        let mut mon = UtilityMonitor::new(&MachineConfig {
            umon_window: 4096,
            ..MachineConfig::default()
        });
        let mut rng = TraceRng::new(2);
        b.iter(|| {
            for _ in 0..10_000 {
                mon.observe(LineAddr::new(rng.below(120_000)));
            }
        })
    });

    group.bench_function("system_step", |b| {
        let mut system = System::new(MachineConfig::default(), 1, LlcMode::Partitioned);
        let mut src = WorkingSetModel::new(
            WorkingSetConfig {
                working_set_bytes: 3 << 20,
                ..WorkingSetConfig::default()
            },
            3,
        );
        b.iter(|| {
            for _ in 0..10_000 {
                system.step(0, &mut src);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
