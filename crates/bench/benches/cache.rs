//! Benchmarks of the simulation substrate: cache accesses, UMON
//! observation, and full-system stepping — the inner loops every
//! experiment spends its time in. Uses the in-repo harness
//! (`--features bench-harness`):
//!
//! `cargo bench -p untangle-bench --features bench-harness --bench cache`

use untangle_bench::harness::bench;
use untangle_sim::cache::SetAssocCache;
use untangle_sim::config::{CacheGeometry, MachineConfig, PartitionSize};
use untangle_sim::system::{LlcMode, System};
use untangle_sim::umon::UtilityMonitor;
use untangle_trace::synth::{TraceRng, WorkingSetConfig, WorkingSetModel};
use untangle_trace::LineAddr;

fn main() {
    let mut cache = SetAssocCache::new(CacheGeometry {
        sets: PartitionSize::MB2.sets(16),
        ways: 16,
    });
    let mut rng = TraceRng::new(1);
    println!(
        "{}",
        bench("llc_access_2mb_partition_10k", 5, 100, || {
            for _ in 0..10_000 {
                cache.access(LineAddr::new(rng.below(60_000)));
            }
        })
        .render()
    );

    let mut mon = UtilityMonitor::new(&MachineConfig {
        umon_window: 4096,
        ..MachineConfig::default()
    });
    let mut rng = TraceRng::new(2);
    println!(
        "{}",
        bench("umon_observe_10k", 5, 100, || {
            for _ in 0..10_000 {
                mon.observe(LineAddr::new(rng.below(120_000)));
            }
        })
        .render()
    );

    let mut system = System::new(MachineConfig::default(), 1, LlcMode::Partitioned);
    let mut src = WorkingSetModel::new(
        WorkingSetConfig {
            working_set_bytes: 3 << 20,
            ..WorkingSetConfig::default()
        },
        3,
    );
    println!(
        "{}",
        bench("system_step_10k", 5, 100, || {
            for _ in 0..10_000 {
                system.step(0, &mut src);
            }
        })
        .render()
    );
}
