//! Round-trips the obs JSON sink through the bench crate's own JSON
//! parser: every line the sink emits must parse, carry a `"type"`
//! discriminant, and preserve field values — the same contract CI's
//! `obs_check` smoke step enforces on a real experiment run.

use untangle_bench::report::Json;
use untangle_obs::{ObsMode, Registry, Value};

/// Drains `registry` and parses every line, asserting the shared line
/// contract along the way.
fn parse_lines(registry: &Registry) -> Vec<Json> {
    registry
        .drain_lines()
        .iter()
        .map(|line| {
            let json = Json::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
            assert!(
                json.get("type").and_then(Json::as_str).is_some(),
                "line without type: {line}"
            );
            json
        })
        .collect()
}

#[test]
fn json_sink_lines_roundtrip_through_the_report_parser() {
    let registry = Registry::with_mode(ObsMode::Json);
    registry.counter_add("solver.iterations", 41);
    registry.counter_add("solver.iterations", 1);
    registry.gauge_set("engine.load", 0.75);
    {
        let _span = registry.span("mix/01");
    }
    registry.event(
        "dinkelbach.solve",
        &[
            ("rate", Value::F64(0.125)),
            ("outer_iterations", Value::U64(7)),
            ("warm", Value::Bool(true)),
            ("status", Value::Str("converged".to_string())),
            ("fw_gaps", Value::F64s(vec![1.0, 0.5, f64::NAN])),
        ],
    );
    registry.diag("checkpoint store degraded: \"disk full\"\nsecond line");
    registry.emit_summary();

    let lines = parse_lines(&registry);
    let of_type = |t: &str| -> Vec<&Json> {
        lines
            .iter()
            .filter(|j| j.get("type").and_then(Json::as_str) == Some(t))
            .collect()
    };

    let events = of_type("event");
    assert_eq!(events.len(), 1);
    let e = events[0];
    assert_eq!(
        e.get("name").and_then(Json::as_str),
        Some("dinkelbach.solve")
    );
    assert_eq!(e.get("rate").and_then(Json::as_f64), Some(0.125));
    assert_eq!(e.get("outer_iterations").and_then(Json::as_i64), Some(7));
    assert_eq!(e.get("warm").and_then(Json::as_bool), Some(true));
    assert_eq!(e.get("status").and_then(Json::as_str), Some("converged"));
    // Non-finite floats must arrive as JSON null, not bare `NaN`.
    let gaps = e.get("fw_gaps").and_then(Json::as_arr).expect("fw_gaps");
    assert_eq!(gaps.len(), 3);
    assert_eq!(gaps[0].as_f64(), Some(1.0));
    assert!(matches!(gaps[2], Json::Null));

    // Diagnostics survive escaping (quotes, newline) intact.
    let diags = of_type("diag");
    assert_eq!(diags.len(), 1);
    assert_eq!(
        diags[0].get("msg").and_then(Json::as_str),
        Some("checkpoint store degraded: \"disk full\"\nsecond line")
    );

    // The summary flush re-emits aggregates as typed lines.
    let counters = of_type("counter");
    assert!(counters.iter().any(|c| c.get("name").and_then(Json::as_str)
        == Some("solver.iterations")
        && c.get("value").and_then(Json::as_i64) == Some(42)));
    let gauges = of_type("gauge");
    assert!(gauges.iter().any(
        |g| g.get("name").and_then(Json::as_str) == Some("engine.load")
            && g.get("value").and_then(Json::as_f64) == Some(0.75)
    ));
    let span_totals = of_type("span_total");
    assert!(span_totals
        .iter()
        .any(|s| s.get("name").and_then(Json::as_str) == Some("mix/01")
            && s.get("count").and_then(Json::as_i64) == Some(1)));
    // The span itself was also emitted as a per-completion line.
    assert!(of_type("span")
        .iter()
        .any(|s| s.get("name").and_then(Json::as_str) == Some("mix/01")));
}

#[test]
fn disabled_registry_emits_nothing() {
    let registry = Registry::with_mode(ObsMode::Off);
    registry.counter_add("x", 1);
    registry.event("e", &[("v", Value::U64(1))]);
    {
        let _span = registry.span("s");
    }
    registry.emit_summary();
    assert!(registry.drain_lines().is_empty());
    assert!(registry.snapshot().is_empty());
}
