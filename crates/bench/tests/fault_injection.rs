//! The fault-injection harness for the experiment engine (CI runs this
//! with `UNTANGLE_FAULT_INJECT=worker_panic:3` on both feature
//! configurations).
//!
//! Everything lives in ONE test function: the injection budget and the
//! fired-count are process-global, and the `UNTANGLE_FAULT_INJECT`
//! variable is mutated mid-test, so concurrent test functions would race
//! on both. Sequential phases keep every assertion deterministic.

use untangle_bench::checkpoint::CheckpointStore;
use untangle_bench::experiments::{run_all_mixes_resumable, SweepOutcome};
use untangle_bench::parallel::{fault, RetryPolicy};
use untangle_workloads::mix::{mix_by_id, Mix};

const SCALE: f64 = 0.0005;

/// Renders every summary of the sweep to one JSON string — the
/// byte-identity witness for the isolation and resume guarantees.
fn render(outcome: &SweepOutcome) -> String {
    outcome
        .summaries
        .iter()
        .map(|s| s.as_ref().expect("sweep complete").to_json().render())
        .collect::<Vec<_>>()
        .join("\n")
}

fn two_mixes() -> Vec<Mix> {
    vec![mix_by_id(1).unwrap(), mix_by_id(2).unwrap()]
}

#[test]
fn injected_faults_are_isolated_and_resume_is_bit_identical() {
    // --- Phase 1: injected panics are isolated, retried, reported ---
    // Ensure the budget exists whether or not CI exported it. Nothing
    // in this process has consumed injections yet (single test fn).
    if std::env::var(fault::ENV).is_err() {
        std::env::set_var(fault::ENV, "worker_panic:3");
    }
    let budget: usize = std::env::var(fault::ENV)
        .unwrap()
        .strip_prefix("worker_panic:")
        .expect("harness uses the worker_panic mode")
        .parse()
        .expect("numeric injection budget");
    assert_eq!(fault::injected_count(), 0, "budget untouched at start");

    let mixes = two_mixes();
    // Worst case every injection hits the same item, so one more
    // attempt than the budget guarantees recovery.
    let faulty = run_all_mixes_resumable(&mixes, SCALE, RetryPolicy::new(budget + 1), None, false);
    assert_eq!(fault::injected_count(), budget, "all injections fired");
    assert!(
        faulty.is_complete(),
        "sweep completed despite {budget} panics"
    );
    assert_eq!(
        faulty.failures.len(),
        budget,
        "report records exactly the injected failures"
    );
    assert!(faulty.failures.iter().all(|f| f.recovered));
    assert!(faulty
        .failures
        .iter()
        .all(|f| f.message.contains("injected fault")));

    // --- Phase 2: faulted results are bit-identical to a clean run ---
    std::env::remove_var(fault::ENV);
    let clean = run_all_mixes_resumable(&mixes, SCALE, RetryPolicy::default(), None, false);
    assert!(clean.failures.is_empty());
    assert_eq!(
        render(&faulty),
        render(&clean),
        "retried items must not diverge from clean execution"
    );

    // --- Phase 3: kill + resume recomputes only the remaining items ---
    let dir = std::env::temp_dir().join("untangle_fault_injection_ckpt");
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::new(&dir).unwrap();

    // Simulate a run killed after finishing one item: only mix 1 ran,
    // and its checkpoint was written the moment it completed.
    let partial = run_all_mixes_resumable(
        &mixes[..1],
        SCALE,
        RetryPolicy::default(),
        Some(&store),
        false,
    );
    assert!(partial.is_complete());
    assert_eq!(partial.resumed, 0, "no checkpoints existed yet");
    assert!(store.path_for(mixes[0].id).exists());

    // Resume over the full list: the finished item loads, the lost one
    // recomputes, and the final report is byte-identical.
    let resumed =
        run_all_mixes_resumable(&mixes, SCALE, RetryPolicy::default(), Some(&store), true);
    assert_eq!(resumed.resumed, 1, "exactly the checkpointed item skipped");
    assert!(resumed.is_complete());
    assert_eq!(render(&resumed), render(&clean));

    // (Fingerprint mismatches and the no-`--resume` path are covered at
    // unit level in `checkpoint::tests`; re-running whole sweeps for
    // them here would only burn CI minutes.)

    // A torn checkpoint (kill mid-write before the atomic rename would
    // normally prevent this) is recomputed, never trusted.
    std::fs::write(store.path_for(mixes[0].id), "{ torn").unwrap();
    let after_corrupt =
        run_all_mixes_resumable(&mixes, SCALE, RetryPolicy::default(), Some(&store), true);
    assert_eq!(after_corrupt.resumed, 1, "only mix 2's checkpoint is valid");
    assert!(after_corrupt.is_complete());
    assert_eq!(render(&after_corrupt), render(&clean));

    let _ = std::fs::remove_dir_all(&dir);
}
