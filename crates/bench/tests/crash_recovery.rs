//! Crash-recovery harness for the experiment engine: the real
//! `exp_mixes` and `exp_scenarios` binaries are killed at **every**
//! durable write boundary and mid-write, resumed, and required to
//! produce byte-identical artifacts.
//!
//! The sweep is exhaustive rather than sampled: a clean probe run
//! reports how many durable writes the binary performs (the
//! `durable.writes` obs counter — checkpoint save, `mixNN.csv`,
//! and the two `BENCH_experiments.json` sections), then every write
//! index is replayed twice under `UNTANGLE_FAULT_INJECT`:
//!
//! * `kill_at_write:N` — the process aborts *before* the Nth durable
//!   write transfers a byte (a power cut at a write boundary);
//! * `torn_write:N` — the Nth write persists only a strict prefix of
//!   its temp file before the abort (a power cut mid-write).
//!
//! Each killed run is then resumed (`--resume`) in the same directory
//! and its `mixNN.csv` must match the uninterrupted baseline byte for
//! byte. (`BENCH_experiments.json` embeds wall-clock time, so the CSV
//! artifact is the byte-identity witness.)
//!
//! Everything lives in ONE test function: the runs are spawned child
//! processes, but serial phases keep the scratch-directory bookkeeping
//! and the baseline/killed-run orderings deterministic.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Small enough that the full sweep (2 runs per durable write, both
/// fault kinds) stays in CI budget; large enough that every scheme
/// makes real decisions.
const SCALE: &str = "0.0002";
const MIX: &str = "1";

fn exp_mixes(dir: &Path, fault: Option<&str>, resume: bool, obs_summary: bool) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_exp_mixes"));
    cmd.current_dir(dir)
        .args(["--scale", SCALE, "--mix", MIX, "--out", "results"])
        // Never inherit CI's `worker_panic:N` budget (or a previous
        // phase's kill point) by accident.
        .env_remove("UNTANGLE_FAULT_INJECT");
    if resume {
        cmd.arg("--resume");
    }
    if obs_summary {
        cmd.env("UNTANGLE_OBS", "summary");
    } else {
        cmd.env_remove("UNTANGLE_OBS");
    }
    if let Some(budget) = fault {
        cmd.env("UNTANGLE_FAULT_INJECT", budget);
    }
    cmd.output().expect("spawn exp_mixes")
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("untangle_bench_crash_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn mix_csv(dir: &Path) -> Vec<u8> {
    let path = dir
        .join("results")
        .join(format!("mix{:02}.csv", MIX.parse::<usize>().unwrap()));
    std::fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Parses the `durable.writes` counter out of the obs summary table on
/// stderr (`name  value` rows under `-- counters --`).
fn durable_writes(stderr: &[u8]) -> usize {
    let text = String::from_utf8_lossy(stderr);
    text.lines()
        .filter_map(|line| {
            let mut parts = line.split_whitespace();
            if parts.next()? != "durable.writes" {
                return None;
            }
            parts.next()?.parse().ok()
        })
        .next()
        .unwrap_or_else(|| panic!("no durable.writes counter in stderr:\n{text}"))
}

#[test]
fn every_kill_point_recovers_byte_identically() {
    // --- Baseline: an uninterrupted run, probing the write count ---
    let base = fresh_dir("baseline");
    let clean = exp_mixes(&base, None, false, true);
    assert!(
        clean.status.success(),
        "baseline run failed:\n{}",
        String::from_utf8_lossy(&clean.stderr)
    );
    let baseline_csv = mix_csv(&base);
    let writes = durable_writes(&clean.stderr);
    assert!(
        writes >= 3,
        "expected at least checkpoint + csv + report writes, saw {writes}"
    );

    // --- Exhaustive kill-point sweep over both fault kinds ---
    for kind in ["kill_at_write", "torn_write"] {
        for n in 1..=writes {
            let budget = format!("{kind}:{n}");
            let dir = fresh_dir(&format!("{kind}_{n}"));

            let killed = exp_mixes(&dir, Some(&budget), false, false);
            assert!(
                !killed.status.success(),
                "{budget} must abort the run (the clean run performs {writes} durable writes)"
            );

            let resumed = exp_mixes(&dir, None, true, false);
            assert!(
                resumed.status.success(),
                "resume after {budget} failed:\n{}",
                String::from_utf8_lossy(&resumed.stderr)
            );
            assert_eq!(
                mix_csv(&dir),
                baseline_csv,
                "{budget}: resumed artifact must be byte-identical to the baseline"
            );

            // The checkpoint is durable write #1; any later kill point
            // leaves it behind for the resumed run to load instead of
            // recomputing the mix.
            if kind == "kill_at_write" && n >= 2 {
                let stderr = String::from_utf8_lossy(&resumed.stderr);
                assert!(
                    stderr.contains("(1 resumed from checkpoints)"),
                    "{budget}: expected a checkpoint resume, got:\n{stderr}"
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}

/// Tiny scenario sweep: two traces, a handful of WAL block appends
/// each, so the exhaustive kill-point enumeration (2 runs per durable
/// write) stays in CI budget while still covering the trace header,
/// mid-trace block frames, the finish frame, checkpoint saves, and the
/// report write.
const SCENARIO_ARGS: &[&str] = &[
    "--smoke",
    "--count",
    "2",
    "--trace-instrs",
    "6000",
    "--block",
    "2048",
    "--interval",
    "1000",
    "--slices",
    "2",
    "--validate-every",
    "2",
    "--out",
    "sweep",
];

fn exp_scenarios(dir: &Path, fault: Option<&str>, resume: bool, obs_summary: bool) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_exp_scenarios"));
    cmd.current_dir(dir)
        .args(SCENARIO_ARGS)
        .env_remove("UNTANGLE_FAULT_INJECT")
        // One worker: the durable-write *order* is then deterministic,
        // so `kill_at_write:N` lands on the same write every run.
        .env("UNTANGLE_THREADS", "1");
    if resume {
        cmd.arg("--resume");
    }
    if obs_summary {
        cmd.env("UNTANGLE_OBS", "summary");
    } else {
        cmd.env_remove("UNTANGLE_OBS");
    }
    if let Some(budget) = fault {
        cmd.env("UNTANGLE_FAULT_INJECT", budget);
    }
    cmd.output().expect("spawn exp_scenarios")
}

/// Every `.trace` file under `<dir>/sweep/traces`, sorted by name.
fn trace_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let traces = dir.join("sweep").join("traces");
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(&traces)
        .unwrap_or_else(|e| panic!("read {}: {e}", traces.display()))
        .filter_map(|entry| {
            let path = entry.expect("dir entry").path();
            if path.extension().is_some_and(|ext| ext == "trace") {
                let name = path.file_name().unwrap().to_string_lossy().into_owned();
                let bytes =
                    std::fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
                Some((name, bytes))
            } else {
                None
            }
        })
        .collect();
    files.sort();
    files
}

#[test]
fn every_trace_generation_kill_point_recovers_byte_identically() {
    // --- Baseline: an uninterrupted sweep, probing the write count ---
    let base = fresh_dir("scenarios_baseline");
    let clean = exp_scenarios(&base, None, false, true);
    assert!(
        clean.status.success(),
        "baseline sweep failed:\n{}",
        String::from_utf8_lossy(&clean.stderr)
    );
    let baseline_traces = trace_files(&base);
    assert_eq!(baseline_traces.len(), 2, "expected two scenario traces");
    let writes = durable_writes(&clean.stderr);
    assert!(
        writes >= 7,
        "expected trace headers + block frames + finish frames + \
         checkpoints + report, saw {writes}"
    );

    // --- Exhaustive kill-point sweep over both fault kinds ---
    for kind in ["kill_at_write", "torn_write"] {
        for n in 1..=writes {
            let budget = format!("{kind}:{n}");
            let dir = fresh_dir(&format!("scenarios_{kind}_{n}"));

            let killed = exp_scenarios(&dir, Some(&budget), false, false);
            assert!(
                !killed.status.success(),
                "{budget} must abort the sweep (the clean sweep performs {writes} durable writes)"
            );

            let resumed = exp_scenarios(&dir, None, true, false);
            assert!(
                resumed.status.success(),
                "resume after {budget} failed:\n{}",
                String::from_utf8_lossy(&resumed.stderr)
            );
            assert_eq!(
                trace_files(&dir),
                baseline_traces,
                "{budget}: resumed trace files must be byte-identical to the baseline"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    let _ = std::fs::remove_dir_all(&base);
}
