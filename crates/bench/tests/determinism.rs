//! The parallel-engine determinism contract: fanning an experiment out
//! over worker threads must produce **bit-identical** results to the
//! sequential loop, and the memoized `R'_max` cache must return exactly
//! what an uncached solve returns.
//!
//! Thread counts are pinned via `UNTANGLE_THREADS`. The assertions stay
//! valid even if the two env-using tests race on the variable: the whole
//! point is that *any* thread count yields the same bits.

use untangle_bench::experiments::{run_all_mixes, sensitivity_study, MixEvaluation};
use untangle_info::{Channel, Dist};
use untangle_info::{ChannelConfig, DelayDist, DinkelbachOptions, RmaxCache, RmaxSolver};
use untangle_trace::synth::TraceRng;
use untangle_workloads::mix::mix_by_id;
use untangle_workloads::spec::spec_by_name;

/// Exact bit-level fingerprint of an evaluation: every per-domain IPC,
/// leakage counter, and partition-size sample.
fn fingerprint(evals: &[MixEvaluation]) -> Vec<u64> {
    let mut out = Vec::new();
    for e in evals {
        out.push(e.mix_id as u64);
        out.push(e.total_demand_mb.to_bits());
        for run in &e.runs {
            for d in &run.report.domains {
                out.push(d.ipc().to_bits());
                out.push(d.leakage.total_bits.to_bits());
                out.push(d.leakage.assessments);
                out.push(d.leakage.visible_actions);
                out.push(d.leakage.maintains);
                out.extend(d.size_samples.iter().map(|s| s.bytes()));
            }
        }
    }
    out
}

#[test]
fn parallel_run_all_mixes_is_bit_identical_to_sequential() {
    let mixes: Vec<_> = [1, 2, 3].iter().map(|&i| mix_by_id(i).unwrap()).collect();
    let scale = 0.001;

    std::env::set_var("UNTANGLE_THREADS", "1");
    let sequential = fingerprint(&run_all_mixes(&mixes, scale));
    std::env::set_var("UNTANGLE_THREADS", "4");
    let parallel = fingerprint(&run_all_mixes(&mixes, scale));
    std::env::remove_var("UNTANGLE_THREADS");

    assert_eq!(sequential, parallel, "fan-out must not change any bit");
}

#[test]
fn parallel_sensitivity_study_is_bit_identical_to_sequential() {
    let benchmarks = [
        *spec_by_name("povray_0").unwrap(),
        *spec_by_name("mcf_0").unwrap(),
        *spec_by_name("lbm_0").unwrap(),
    ];
    let scale = 0.002;

    let row_bits = |rows: &[untangle_bench::experiments::SensitivityRow]| -> Vec<u64> {
        rows.iter()
            .flat_map(|r| {
                r.normalized_ipc
                    .iter()
                    .map(|v| v.to_bits())
                    .chain(std::iter::once(r.adequate.bytes()))
                    .collect::<Vec<_>>()
            })
            .collect()
    };

    std::env::set_var("UNTANGLE_THREADS", "1");
    let sequential = row_bits(&sensitivity_study(&benchmarks, scale));
    std::env::set_var("UNTANGLE_THREADS", "4");
    let parallel = row_bits(&sensitivity_study(&benchmarks, scale));
    std::env::remove_var("UNTANGLE_THREADS");

    assert_eq!(sequential, parallel, "fan-out must not change any bit");
}

#[test]
fn cached_solves_match_uncached_randomized() {
    let cache = RmaxCache::new();
    let options = DinkelbachOptions::default();
    let mut gen = TraceRng::new(0xace5);
    for case in 0..10 {
        let cooldown = 2 + gen.below(10);
        let n_symbols = 2 + gen.below(3) as usize;
        let step = 1 + gen.below(3);
        let width = 1 + gen.below(4) as usize;
        let delay = if width == 1 {
            DelayDist::none()
        } else {
            DelayDist::uniform(width).unwrap()
        };
        let config = ChannelConfig::evenly_spaced(cooldown, n_symbols, step, delay)
            .expect("sampled config is valid");

        let direct = RmaxSolver::with_options(
            Channel::new(config.clone()).expect("valid channel"),
            options.clone(),
        )
        .solve()
        .expect("solver converges");
        let cached = cache
            .solve(&config, &options)
            .expect("cached solve converges");

        let ctx = format!(
            "case {case}: cooldown {cooldown} n_symbols {n_symbols} step {step} width {width}"
        );
        assert_eq!(cached.rate.to_bits(), direct.rate.to_bits(), "{ctx}");
        assert_eq!(
            cached.upper_bound.to_bits(),
            direct.upper_bound.to_bits(),
            "{ctx}"
        );
        let bits = |d: &Dist| d.as_slice().iter().map(|p| p.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&cached.input), bits(&direct.input), "{ctx}");

        // A second lookup is a pure hit and returns the same bits again.
        let again = cache.solve(&config, &options).expect("hit");
        assert_eq!(again.rate.to_bits(), cached.rate.to_bits(), "{ctx}");
    }
    let stats = cache.stats();
    assert_eq!(stats.misses, 10);
    assert_eq!(stats.hits, 10);
}
