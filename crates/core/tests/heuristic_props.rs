//! Property-based tests of the action heuristic and the schedules.

use proptest::prelude::*;
use untangle_core::heuristic::{decide, HeuristicConfig};
use untangle_core::schedule::{ProgressSchedule, ScheduleEvent, TimeSchedule};
use untangle_sim::config::PartitionSize;
use untangle_sim::umon::HitCurve;

fn curves() -> impl Strategy<Value = HitCurve> {
    proptest::collection::vec(0u64..10_000, 9).prop_map(|v| {
        let mut c = [0u64; 9];
        c.copy_from_slice(&v);
        c
    })
}

fn sizes() -> impl Strategy<Value = PartitionSize> {
    (0usize..9).prop_map(|i| PartitionSize::ALL[i])
}

proptest! {
    #[test]
    fn decision_is_affordable_and_supported(
        curve in curves(),
        fill in 0usize..5000,
        current in sizes(),
        free in 0u64..(32u64 << 20),
    ) {
        let cfg = HeuristicConfig::default();
        let a = decide(&curve, fill, current, free, &cfg);
        prop_assert!(PartitionSize::ALL.contains(&a.size));
        prop_assert!(
            a.size.bytes() <= current.bytes() + free,
            "decision must fit the budget"
        );
    }

    #[test]
    fn empty_window_always_maintains(
        curve in curves(),
        current in sizes(),
        free in 0u64..(32u64 << 20),
    ) {
        let cfg = HeuristicConfig::default();
        let a = decide(&curve, cfg.min_window_fill.saturating_sub(1), current, free, &cfg);
        prop_assert_eq!(a.size, current);
    }

    #[test]
    fn plentiful_pool_never_shrinks(
        curve in curves(),
        fill in 100usize..5000,
        current in sizes(),
    ) {
        let cfg = HeuristicConfig::default();
        let a = decide(&curve, fill, current, cfg.shrink_free_threshold + (8 << 20), &cfg);
        prop_assert!(a.size >= current, "demand-driven shrinking only under scarcity");
    }

    #[test]
    fn shrinks_move_one_step_at_most(
        curve in curves(),
        fill in 100usize..5000,
        current in sizes(),
        free in 0u64..(1u64 << 20),
    ) {
        let cfg = HeuristicConfig::default();
        let a = decide(&curve, fill, current, free, &cfg);
        if a.size < current {
            prop_assert_eq!(Some(a.size), current.next_down());
        }
    }

    #[test]
    fn progress_schedule_fires_exactly_every_n(
        n in 1u64..100,
        stream in proptest::collection::vec(any::<bool>(), 0..500),
    ) {
        let mut s = ProgressSchedule::new(n);
        let mut counted = 0u64;
        for &c in &stream {
            let fired = s.on_retire(c) == ScheduleEvent::Assess;
            if c {
                counted += 1;
            }
            prop_assert_eq!(fired, c && counted.is_multiple_of(n), "at counted={}", counted);
        }
    }

    #[test]
    fn time_schedule_never_fires_before_interval(
        interval in 1u64..1000,
        gaps in proptest::collection::vec(1u64..200, 1..100),
    ) {
        let mut s = TimeSchedule::new(interval as f64);
        let mut now = 0.0;
        let mut last_fire = f64::NEG_INFINITY;
        let mut fired_any = false;
        for &g in &gaps {
            now += g as f64;
            if s.on_retire(now) == ScheduleEvent::Assess {
                if fired_any {
                    // Two firings are separated by at least one interval
                    // minus the step quantization.
                    prop_assert!(now - last_fire >= interval as f64 - 200.0);
                }
                last_fire = now;
                fired_any = true;
            }
        }
    }
}
