//! Property-style tests of the action heuristic and the schedules,
//! driven by a seeded [`TraceRng`] instead of a property-testing
//! framework (the build is offline). Each case prints its sampled
//! inputs on failure for reproduction.

use untangle_core::heuristic::{decide, HeuristicConfig};
use untangle_core::schedule::{ProgressSchedule, ScheduleEvent, TimeSchedule};
use untangle_core::taint::Labeled;
use untangle_sim::config::PartitionSize;
use untangle_sim::umon::HitCurve;
use untangle_trace::synth::TraceRng;

fn curve(gen: &mut TraceRng) -> HitCurve {
    let mut c = [0u64; 9];
    for slot in c.iter_mut() {
        *slot = gen.below(10_000);
    }
    c
}

fn size(gen: &mut TraceRng) -> PartitionSize {
    PartitionSize::ALL[gen.below(9) as usize]
}

#[test]
fn decision_is_affordable_and_supported() {
    let mut gen = TraceRng::new(0xdec1);
    let cfg = HeuristicConfig::default();
    for _ in 0..64 {
        let c = curve(&mut gen);
        let fill = gen.below(5000) as usize;
        let current = size(&mut gen);
        let free = gen.below(32u64 << 20);
        let a = decide(&c, fill, current, free, &cfg);
        assert!(PartitionSize::ALL.contains(&a.size));
        assert!(
            a.size.bytes() <= current.bytes() + free,
            "fill {fill} current {current:?} free {free}: decision must fit the budget"
        );
    }
}

#[test]
fn empty_window_always_maintains() {
    let mut gen = TraceRng::new(0xe471);
    let cfg = HeuristicConfig::default();
    for _ in 0..64 {
        let c = curve(&mut gen);
        let current = size(&mut gen);
        let free = gen.below(32u64 << 20);
        let a = decide(
            &c,
            cfg.min_window_fill.saturating_sub(1),
            current,
            free,
            &cfg,
        );
        assert_eq!(a.size, current, "current {current:?} free {free}");
    }
}

#[test]
fn plentiful_pool_never_shrinks() {
    let mut gen = TraceRng::new(0x9001);
    let cfg = HeuristicConfig::default();
    for _ in 0..64 {
        let c = curve(&mut gen);
        let fill = (100 + gen.below(4900)) as usize;
        let current = size(&mut gen);
        let a = decide(
            &c,
            fill,
            current,
            cfg.shrink_free_threshold + (8 << 20),
            &cfg,
        );
        assert!(
            a.size >= current,
            "fill {fill} current {current:?}: demand-driven shrinking only under scarcity"
        );
    }
}

#[test]
fn shrinks_move_one_step_at_most() {
    let mut gen = TraceRng::new(0x51e4);
    let cfg = HeuristicConfig::default();
    for _ in 0..64 {
        let c = curve(&mut gen);
        let fill = (100 + gen.below(4900)) as usize;
        let current = size(&mut gen);
        let free = gen.below(1u64 << 20);
        let a = decide(&c, fill, current, free, &cfg);
        if a.size < current {
            assert_eq!(
                Some(a.size),
                current.next_down(),
                "fill {fill} current {current:?} free {free}"
            );
        }
    }
}

#[test]
fn progress_schedule_fires_exactly_every_n() {
    let mut gen = TraceRng::new(0xf12e);
    for _ in 0..32 {
        let n = 1 + gen.below(99);
        let len = gen.below(500);
        let mut s = ProgressSchedule::new(n);
        let mut counted = 0u64;
        for _ in 0..len {
            let c = gen.below(2) == 1;
            let fired = s.on_retire(Labeled::public(c)) == ScheduleEvent::Assess;
            if c {
                counted += 1;
            }
            assert_eq!(
                fired,
                c && counted.is_multiple_of(n),
                "n {n} at counted={counted}"
            );
        }
    }
}

#[test]
fn time_schedule_never_fires_before_interval() {
    let mut gen = TraceRng::new(0x7153);
    for _ in 0..32 {
        let interval = 1 + gen.below(999);
        let gaps = 1 + gen.below(99);
        let mut s = TimeSchedule::new(interval as f64);
        let mut now = 0.0;
        let mut last_fire = f64::NEG_INFINITY;
        let mut fired_any = false;
        for _ in 0..gaps {
            now += (1 + gen.below(199)) as f64;
            if s.on_retire(Labeled::secret(now)) == ScheduleEvent::Assess {
                if fired_any {
                    // Two firings are separated by at least one interval
                    // minus the step quantization.
                    assert!(
                        now - last_fire >= interval as f64 - 200.0,
                        "interval {interval}: fired at {now} after {last_fire}"
                    );
                }
                last_fire = now;
                fired_any = true;
            }
        }
    }
}
