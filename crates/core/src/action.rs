//! Resizing actions and resizing traces (§3.1, §3.2).

use untangle_sim::PartitionSize;

/// A resizing action: "use this partition size next". The paper's
/// evaluation defines one action per supported size (9 actions, so the
/// conventional Time scheme leaks `log2 9 ≈ 3.17` bits per assessment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Action {
    /// The partition size the action selects.
    pub size: PartitionSize,
}

impl Action {
    /// Creates an action selecting `size`.
    pub const fn set_size(size: PartitionSize) -> Self {
        Self { size }
    }

    /// Classifies this action relative to the current partition size.
    pub fn classify(&self, current: PartitionSize) -> ActionClass {
        use std::cmp::Ordering::*;
        match self.size.cmp(&current) {
            Greater => ActionClass::Expand,
            Equal => ActionClass::Maintain,
            Less => ActionClass::Shrink,
        }
    }
}

/// How an action looks to the attacker (§5.3.4): Expand and Shrink
/// change the partition size and are visible; Maintain is invisible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionClass {
    /// The partition grows — attacker-visible.
    Expand,
    /// The partition size is unchanged — invisible to the attacker.
    Maintain,
    /// The partition shrinks — attacker-visible.
    Shrink,
}

impl ActionClass {
    /// Whether the attacker can observe this action's timing.
    pub const fn is_visible(self) -> bool {
        !matches!(self, ActionClass::Maintain)
    }

    /// Stable lowercase name (used in obs counter keys).
    pub const fn name(self) -> &'static str {
        match self {
            ActionClass::Expand => "expand",
            ActionClass::Maintain => "maintain",
            ActionClass::Shrink => "shrink",
        }
    }

    /// Parses a [`ActionClass::name`] back (snapshot restore).
    pub fn parse(name: &str) -> Option<ActionClass> {
        match name {
            "expand" => Some(ActionClass::Expand),
            "maintain" => Some(ActionClass::Maintain),
            "shrink" => Some(ActionClass::Shrink),
            _ => None,
        }
    }
}

/// One entry of a resizing trace: what was decided, how it classifies,
/// and when it was decided / applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// The decided action.
    pub action: Action,
    /// Its visibility classification at decision time.
    pub class: ActionClass,
    /// Core cycle of the resizing assessment (decision point).
    pub decided_at_cycles: f64,
    /// Core cycle when the action takes effect (decision + random delay
    /// δ for visible actions; equals the decision cycle for Maintain).
    pub applied_at_cycles: f64,
}

/// The resizing trace of one domain: the sequence of actions with the
/// time of each action (§3.2). The victim's leakage is a function of
/// the realizable traces; the runtime accountant bounds it online.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResizingTrace {
    entries: Vec<TraceEntry>,
}

impl ResizingTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry.
    pub fn push(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    /// All entries in decision order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of assessments recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no assessments were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The action sequence alone (the `S` of §5.1), without timing.
    pub fn action_sequence(&self) -> Vec<Action> {
        self.entries.iter().map(|e| e.action).collect()
    }

    /// Number of Maintain decisions (the §5.3.4 optimization leans on
    /// these being the common case).
    pub fn maintain_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.class == ActionClass::Maintain)
            .count()
    }

    /// Number of attacker-visible actions.
    pub fn visible_count(&self) -> usize {
        self.entries.iter().filter(|e| e.class.is_visible()).count()
    }

    /// Fraction of assessments that chose Maintain (§9 reports ~90 %).
    pub fn maintain_fraction(&self) -> f64 {
        if self.entries.is_empty() {
            0.0
        } else {
            self.maintain_count() as f64 / self.entries.len() as f64
        }
    }
}

impl FromIterator<TraceEntry> for ResizingTrace {
    fn from_iter<I: IntoIterator<Item = TraceEntry>>(iter: I) -> Self {
        Self {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(size: PartitionSize, current: PartitionSize, at: f64) -> TraceEntry {
        let action = Action::set_size(size);
        TraceEntry {
            action,
            class: action.classify(current),
            decided_at_cycles: at,
            applied_at_cycles: at,
        }
    }

    #[test]
    fn classification() {
        let cur = PartitionSize::MB2;
        assert_eq!(
            Action::set_size(PartitionSize::MB4).classify(cur),
            ActionClass::Expand
        );
        assert_eq!(
            Action::set_size(PartitionSize::MB2).classify(cur),
            ActionClass::Maintain
        );
        assert_eq!(
            Action::set_size(PartitionSize::KB512).classify(cur),
            ActionClass::Shrink
        );
    }

    #[test]
    fn visibility() {
        assert!(ActionClass::Expand.is_visible());
        assert!(ActionClass::Shrink.is_visible());
        assert!(!ActionClass::Maintain.is_visible());
    }

    #[test]
    fn trace_counts() {
        let t: ResizingTrace = vec![
            entry(PartitionSize::MB4, PartitionSize::MB2, 1.0),
            entry(PartitionSize::MB4, PartitionSize::MB4, 2.0),
            entry(PartitionSize::MB4, PartitionSize::MB4, 3.0),
            entry(PartitionSize::MB2, PartitionSize::MB4, 4.0),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.len(), 4);
        assert_eq!(t.maintain_count(), 2);
        assert_eq!(t.visible_count(), 2);
        assert!((t.maintain_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(t.action_sequence().len(), 4);
    }

    #[test]
    fn empty_trace() {
        let t = ResizingTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.maintain_fraction(), 0.0);
    }
}
