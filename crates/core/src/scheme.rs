//! The four evaluated partitioning schemes (Table 4) and their
//! parameters.
//!
//! | Scheme   | Description                                              |
//! |----------|----------------------------------------------------------|
//! | Static   | fixed 2 MB per domain                                    |
//! | Time     | dynamic, assess every `T` cycles (conventional)          |
//! | Untangle | dynamic, assess every `N` counted retired instructions,  |
//! |          | cooldown `T_c = N/w`, random action delay δ              |
//! | Shared   | no partitions (insecure baseline)                        |

use crate::heuristic::HeuristicConfig;
use untangle_info::dinkelbach::DinkelbachOptions;
use untangle_info::rate_table::RateTableConfig;
use untangle_info::{DelayDist, InfoError, RateTable, RmaxCache};
use untangle_sim::config::PartitionSize;

/// Which scheme to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Static partitioning: each domain keeps 2 MB for the whole run.
    Static,
    /// Conventional dynamic partitioning with a wall-clock schedule.
    Time,
    /// The Untangle scheme: progress-based schedule, annotation-aware
    /// metric, cooldown, random delay, rate-table accounting.
    Untangle,
    /// No partitioning at all: one shared LLC (insecure).
    Shared,
    /// A SecDCP-style tiered baseline (§10): only *public*-tier domains
    /// drive resizing (with a conventional time schedule and an
    /// all-seeing metric); sensitive domains keep their initial
    /// partition. Secure under a tiered security lattice, but in the
    /// paper's mutually-distrusting peer model every domain handles
    /// secrets, so SecDCP degenerates to static partitioning for them.
    SecDcp,
}

impl SchemeKind {
    /// All four schemes in the paper's presentation order.
    pub const ALL: [SchemeKind; 4] = [
        SchemeKind::Static,
        SchemeKind::Time,
        SchemeKind::Untangle,
        SchemeKind::Shared,
    ];

    /// Whether the scheme performs resizing assessments.
    pub const fn is_dynamic(self) -> bool {
        matches!(
            self,
            SchemeKind::Time | SchemeKind::Untangle | SchemeKind::SecDcp
        )
    }

    /// Display name matching the paper's figures.
    pub const fn name(self) -> &'static str {
        match self {
            SchemeKind::Static => "STATIC",
            SchemeKind::Time => "TIME",
            SchemeKind::Untangle => "UNTANGLE",
            SchemeKind::Shared => "SHARED",
            SchemeKind::SecDcp => "SECDCP",
        }
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Security tier of a domain under the tiered lattice of §6.4 /
/// SecDCP. Irrelevant to the four peer-model schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainTier {
    /// Handles no secrets; may drive resizing under SecDCP.
    Public,
    /// Handles secrets; must not influence resizing under SecDCP.
    Sensitive,
}

/// Which utilization metric a dynamic scheme consults (Table 2 lists
/// several possibilities; the evaluation uses the hit curve, and the
/// footprint variant exists for the metric ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// UMON-style hit curve over all candidate sizes (§7).
    HitCurve,
    /// Memory footprint of recent public accesses (§5.2's example).
    Footprint,
}

/// Parameters shared by the dynamic schemes.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeParams {
    /// Time scheme: assessment interval in cycles (paper: 1 ms = 2 M
    /// cycles at 2 GHz).
    pub time_interval_cycles: f64,
    /// Untangle: assessment interval in counted retired instructions
    /// (paper: 8 M).
    pub progress_interval_instrs: u64,
    /// Untangle: the random action delay δ is uniform over
    /// `[0, delay_max_cycles)` cycles (paper: 1 ms).
    pub delay_max_cycles: u64,
    /// Action-heuristic tunables.
    pub heuristic: HeuristicConfig,
    /// Which utilization metric drives the heuristic.
    pub metric_kind: MetricKind,
    /// Footprint-metric headroom: the target size is the smallest
    /// supported size at least `headroom ×` the observed footprint.
    pub footprint_headroom: f64,
    /// Footprint-metric window in retired public memory accesses
    /// (paper: `M_w` = 1 M). Must be large enough for the footprints of
    /// interest — the footprint can never exceed the window length.
    pub footprint_window: usize,
    /// Covert-channel time resolution: how many rate-table time units
    /// make up one cooldown period.
    pub units_per_cooldown: u64,
    /// Covert-channel input alphabet size per table entry.
    pub channel_symbols: usize,
    /// Rate-table capacity: the maximum consecutive-Maintain credit.
    pub max_maintain_credit: usize,
    /// `true` = §5.3.4 Maintain-optimized accounting; `false` = the §9
    /// worst-case model.
    pub optimized_accounting: bool,
    /// Optional leakage budget in bits; resizing freezes when reached.
    pub leakage_budget_bits: Option<f64>,
}

impl SchemeParams {
    /// Paper-ratio parameters at a linear time `scale` (1.0 = the paper
    /// configuration: 1 ms intervals, 8 M-instruction progress steps).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < scale <= 1`.
    pub fn scaled(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        Self {
            time_interval_cycles: 2_000_000.0 * scale,
            progress_interval_instrs: (8_000_000.0 * scale) as u64,
            delay_max_cycles: (2_000_000.0 * scale) as u64,
            heuristic: HeuristicConfig::default(),
            metric_kind: MetricKind::HitCurve,
            footprint_headroom: 1.25,
            footprint_window: ((1_000_000.0 * scale) as usize).max(65_536),
            units_per_cooldown: 16,
            channel_symbols: 8,
            max_maintain_credit: 16,
            optimized_accounting: true,
            leakage_budget_bits: None,
        }
    }

    /// The cooldown `T_c` the progress schedule structurally guarantees
    /// on a `commit_width`-wide core, in cycles (Mechanism 1).
    pub fn cooldown_cycles(&self, commit_width: u32) -> f64 {
        self.progress_interval_instrs as f64 / commit_width as f64
    }

    /// Bits per assessment the conventional accounting charges:
    /// `log2 |A|` over the nine supported actions (§3.3, §9).
    pub fn conventional_bits_per_assessment() -> f64 {
        (PartitionSize::COUNT as f64).log2()
    }

    /// The rate-table configuration and solver options Untangle's
    /// accounting uses on a `commit_width`-wide core — exposed so
    /// experiment binaries can measure precompute behaviour on exactly
    /// the production table.
    ///
    /// # Errors
    ///
    /// Propagates delay-distribution construction failures.
    pub fn rate_table_spec(
        &self,
        commit_width: u32,
    ) -> Result<(RateTableConfig, DinkelbachOptions), InfoError> {
        let cooldown_cycles = self.cooldown_cycles(commit_width);
        let cycles_per_unit = cooldown_cycles / self.units_per_cooldown as f64;
        let delay_units =
            ((self.delay_max_cycles as f64 / cycles_per_unit).round() as usize).max(1);
        // Space the modeled sender's durations one full delay width
        // apart: a coarser alphabet the noise cannot blur, which is the
        // sender's strongest play and hence the conservative choice.
        let config = RateTableConfig {
            cooldown: self.units_per_cooldown,
            n_symbols: self.channel_symbols,
            step: (delay_units as u64).max(1),
            delay: DelayDist::uniform(delay_units)?,
            max_maintains: self.max_maintain_credit,
        };
        // Slightly relaxed solver tolerances: the certified upper bound
        // absorbs the residual, and table precompute stays fast.
        let options = DinkelbachOptions {
            tolerance: 1e-7,
            max_inner_iterations: 800,
            inner_gap_tolerance: 1e-9,
            upper_bound_margin: 1e-4,
            ..DinkelbachOptions::default()
        };
        Ok((config, options))
    }

    /// Precomputes Untangle's `R_max` rate model for this configuration.
    ///
    /// # Errors
    ///
    /// Propagates solver failures from the rate computation.
    pub fn build_rate_model(&self, commit_width: u32) -> Result<RateModel, InfoError> {
        let cooldown_cycles = self.cooldown_cycles(commit_width);
        let cycles_per_unit = cooldown_cycles / self.units_per_cooldown as f64;
        let delay_units =
            ((self.delay_max_cycles as f64 / cycles_per_unit).round() as usize).max(1);
        let (config, options) = self.rate_table_spec(commit_width)?;
        // Route through the process-wide memo cache: every Untangle runner
        // builds this same table, so all but the first build are free. The
        // first build runs as one batched Dinkelbach sweep (entry 0 seeds
        // all other entries) instead of a sequential warm-start chain.
        let (table, _stats) =
            RateTable::precompute_batched_cached(&config, &options, RmaxCache::global())?;
        Ok(RateModel {
            table,
            cycles_per_unit,
            cooldown_units: self.units_per_cooldown as f64,
            delay_units: delay_units as f64,
        })
    }
}

/// The precomputed covert-channel rate model the Untangle accountant
/// charges from.
#[derive(Debug, Clone)]
pub struct RateModel {
    /// Certified `R_max` upper bounds per consecutive-Maintain count.
    pub table: RateTable,
    /// Cycles per rate-table time unit.
    pub cycles_per_unit: f64,
    /// One cooldown period `T_c` in rate-table units.
    pub cooldown_units: f64,
    /// Width of the random action delay δ in rate-table units.
    pub delay_units: f64,
}

impl Default for SchemeParams {
    fn default() -> Self {
        Self::scaled(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_classify() {
        assert!(!SchemeKind::Static.is_dynamic());
        assert!(SchemeKind::Time.is_dynamic());
        assert!(SchemeKind::Untangle.is_dynamic());
        assert!(!SchemeKind::Shared.is_dynamic());
        assert_eq!(SchemeKind::Untangle.to_string(), "UNTANGLE");
    }

    #[test]
    fn paper_scale_parameters() {
        let p = SchemeParams::scaled(1.0);
        assert_eq!(p.progress_interval_instrs, 8_000_000);
        assert!((p.time_interval_cycles - 2_000_000.0).abs() < 1e-9);
        // 8 M instructions on an 8-wide core: at least 1 M cycles apart.
        assert!((p.cooldown_cycles(8) - 1_000_000.0).abs() < 1e-9);
    }

    #[test]
    fn conventional_charge_is_log2_9() {
        let bits = SchemeParams::conventional_bits_per_assessment();
        assert!((bits - 9f64.log2()).abs() < 1e-12);
        assert!(bits > 3.1 && bits < 3.2);
    }

    #[test]
    fn rate_model_builds_and_decreases() {
        let p = SchemeParams {
            progress_interval_instrs: 32_000,
            delay_max_cycles: 4_000,
            ..SchemeParams::scaled(0.01)
        };
        let model = p.build_rate_model(8).unwrap();
        assert_eq!(model.table.len(), p.max_maintain_credit + 1);
        assert!(model.table.rate(4) < model.table.rate(0));
        // 32k instrs / 8-wide = 4k cycles cooldown over 16 units.
        assert!((model.cycles_per_unit - 250.0).abs() < 1e-9);
        assert_eq!(model.cooldown_units, 16.0);
        // Delay of 4k cycles at 250 cycles/unit = 16 units.
        assert_eq!(model.delay_units, 16.0);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn rejects_bad_scale() {
        let _ = SchemeParams::scaled(0.0);
    }
}
