//! The multi-domain evaluation driver.
//!
//! A [`Runner`] executes one workload per domain under a single
//! partitioning scheme, interleaving domains in global-time order (the
//! domain with the smallest cycle clock steps next). It owns the whole
//! §8 measurement protocol:
//!
//! * warm up for a configurable number of cycles, then measure each
//!   domain's slice of retired instructions;
//! * finished domains keep running — and keep their LLC pressure — but
//!   stop contributing statistics;
//! * resizing assessments fire per the scheme's schedule; decided
//!   visible actions are applied after the random delay δ (Mechanism 2);
//! * the leakage accountant charges every assessment, and a leakage
//!   budget (if set) freezes further resizing;
//! * partition sizes are sampled on a fixed period for the distribution
//!   charts (Fig. 10 top rows);
//! * the optional *squeeze* flag models the §6.2 active attacker that
//!   steals capacity whenever the victim maintains, forcing visible
//!   expansions.

use crate::action::{Action, ResizingTrace};
use crate::decision::DecisionCore;
use crate::error::UntangleError;
use crate::heuristic;
use crate::leakage::{AccountingMode, BudgetGate, LeakageAccountant, LeakageReport};
use crate::metric::{FootprintMetric, HitCurveMetric, MetricPolicy};
use crate::schedule::{ProgressSchedule, ScheduleEvent, TimeSchedule};
use crate::scheme::{DomainTier, MetricKind, SchemeKind, SchemeParams};
use crate::taint::{sites, Labeled};
use untangle_obs as obs;
use untangle_sim::config::{MachineConfig, PartitionSize};
use untangle_sim::stats::{geometric_mean, nearest_rank_index, DomainStats};
use untangle_sim::system::{LlcMode, System};
use untangle_trace::synth::TraceRng;
use untangle_trace::TraceSource;

/// Everything a [`Runner`] needs besides the workloads.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// The simulated machine.
    pub machine: MachineConfig,
    /// Which scheme to run.
    pub kind: SchemeKind,
    /// Dynamic-scheme parameters (ignored by Static/Shared).
    pub params: SchemeParams,
    /// Measured instructions per domain after warmup.
    pub slice_instrs: u64,
    /// Warmup duration in cycles (paper: 5 ms).
    pub warmup_cycles: f64,
    /// Instruction-count warmup: when set, a domain's measurement
    /// starts once it has retired this many instructions, and
    /// `warmup_cycles` is ignored. Slice-replay drivers use this to
    /// align the measured window with an instruction-addressed span of
    /// an on-disk trace, which a cycle threshold cannot do exactly.
    pub warmup_instrs: Option<u64>,
    /// Partition-size sampling period in cycles (paper: 100 µs).
    pub sample_interval_cycles: f64,
    /// Seed for the random action delays.
    pub seed: u64,
    /// Model the §6.2 active attacker: steal capacity after every
    /// Maintain, forcing the victim into visible expansions.
    pub squeeze: bool,
    /// Partition size every domain starts with — and keeps, under the
    /// Static scheme (§8: 2 MB). The sensitivity study (Fig. 11) sweeps
    /// this across all nine supported sizes.
    pub initial_partition: PartitionSize,
    /// Overrides the scheme's default metric policy (Untangle:
    /// public-only; Time: everything). Used by the ablation studies:
    /// a Time schedule with an annotation-aware metric still has
    /// timing-entangled actions (§3.4), and Untangle without
    /// annotations leaks demand (Fig. 2, Edge ①).
    pub metric_policy: Option<MetricPolicy>,
    /// Per-domain security tiers, used only by [`SchemeKind::SecDcp`]:
    /// sensitive domains never drive resizing. Domains beyond the
    /// vector's length — or all domains, when `None` — default to
    /// [`DomainTier::Sensitive`], matching the paper's workloads where
    /// every domain handles secrets.
    pub tiers: Option<Vec<DomainTier>>,
}

impl RunnerConfig {
    /// A deliberately small configuration for unit tests and doctests:
    /// short slices, short intervals, small monitor window.
    pub fn test_scale(kind: SchemeKind, _domains: usize) -> Self {
        let machine = MachineConfig {
            umon_window: 2048,
            ..MachineConfig::default()
        };
        let mut params = SchemeParams {
            time_interval_cycles: 8_000.0,
            progress_interval_instrs: 16_000,
            delay_max_cycles: 2_000,
            max_maintain_credit: 8,
            ..SchemeParams::scaled(0.01)
        };
        params.heuristic.min_window_fill = machine.umon_window / 2;
        Self {
            machine,
            kind,
            params,
            slice_instrs: 400_000,
            warmup_cycles: 2_000.0,
            warmup_instrs: None,
            sample_interval_cycles: 1_000.0,
            seed: 42,
            squeeze: false,
            initial_partition: PartitionSize::MB2,
            metric_policy: None,
            tiers: None,
        }
    }

    /// Paper-ratio configuration at a linear time `scale` (1.0 = the
    /// full §8 protocol: 500 M-instruction slices, 5 ms warmup, 1 ms
    /// intervals). The default experiments run at `scale = 0.01`.
    ///
    /// # Errors
    ///
    /// Returns [`UntangleError::InvalidConfig`] unless `0 < scale <= 1`
    /// (NaN included), so sweep drivers can record a bad grid point and
    /// move on instead of aborting the whole sweep.
    pub fn eval_scale(kind: SchemeKind, scale: f64) -> Result<Self, UntangleError> {
        if !(scale > 0.0 && scale <= 1.0) {
            return Err(UntangleError::InvalidConfig(format!(
                "evaluation scale must be in (0, 1], got {scale}"
            )));
        }
        let machine = MachineConfig {
            umon_window: ((1_000_000.0 * scale) as usize).max(1024),
            ..MachineConfig::default()
        };
        let mut params = SchemeParams::scaled(scale);
        // Only act on a mostly-full monitor window: a cold window is all
        // compulsory misses and would trigger bogus shrinks.
        params.heuristic.min_window_fill = machine.umon_window / 2;
        Ok(Self {
            machine,
            kind,
            params,
            slice_instrs: (500_000_000.0 * scale) as u64,
            warmup_cycles: 10_000_000.0 * scale,
            warmup_instrs: None,
            sample_interval_cycles: 200_000.0 * scale,
            seed: 42,
            squeeze: false,
            initial_partition: PartitionSize::MB2,
            metric_policy: None,
            tiers: None,
        })
    }
}

/// Per-domain results of a run.
#[derive(Debug, Clone)]
pub struct DomainReport {
    /// Statistics over the measured slice (post-warmup).
    pub stats: DomainStats,
    /// The domain's resizing trace (post-warmup).
    pub trace: ResizingTrace,
    /// Accumulated leakage (post-warmup).
    pub leakage: LeakageReport,
    /// Partition sizes sampled every `sample_interval_cycles`.
    pub size_samples: Vec<PartitionSize>,
}

impl DomainReport {
    /// IPC over the measured slice.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// `(min, q1, median, q3, max)` of the sampled partition sizes —
    /// the Fig. 10 top-row box summaries. `None` without samples.
    ///
    /// Quartiles follow the nearest-rank convention
    /// ([`nearest_rank_index`]): each is one of the samples, and the
    /// median of an even-length sample set is the lower middle sample.
    pub fn size_quartiles(
        &self,
    ) -> Option<(
        PartitionSize,
        PartitionSize,
        PartitionSize,
        PartitionSize,
        PartitionSize,
    )> {
        if self.size_samples.is_empty() {
            return None;
        }
        let mut sorted = self.size_samples.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        // `unwrap_or(0)` is unreachable (n > 0 and q ∈ [0, 1]) but keeps
        // this panic-free by construction.
        let at = |q: f64| sorted[nearest_rank_index(n, q).unwrap_or(0)];
        Some((sorted[0], at(0.25), at(0.5), at(0.75), sorted[n - 1]))
    }
}

/// Results of a full run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The scheme that ran.
    pub kind: SchemeKind,
    /// Per-domain reports in domain order.
    pub domains: Vec<DomainReport>,
}

impl RunReport {
    /// Geometric mean of per-domain IPCs (the §9 "system-wide speedup"
    /// numerator).
    pub fn geomean_ipc(&self) -> f64 {
        let ipcs: Vec<f64> = self.domains.iter().map(DomainReport::ipc).collect();
        geometric_mean(&ipcs)
    }
}

/// One schedule-fire telemetry sample exported by
/// [`Runner::run_with_tap`]: the decision inputs an assessment at this
/// point will see, captured *before* the budget gate (a budget-frozen
/// domain still fires its schedule; gating is the receiver's call, so
/// the receiver can reproduce the gate from the same inputs).
///
/// This is the bridge between the batch driver and the serve daemon: a
/// tap stream converted to telemetry events and replayed through a
/// 1-shard `untangle-serve` engine must reproduce the Runner's decision
/// traces bit for bit — the serve equivalence acceptance check.
#[derive(Debug, Clone)]
pub struct TelemetrySample {
    /// The assessed domain.
    pub domain: usize,
    /// The domain clock at the schedule fire.
    pub cycles: f64,
    /// Counted retired instructions since the previous fire (the
    /// progress-schedule interval; `0` under a wall-clock schedule).
    pub progress_instrs: u64,
    /// Monitor-window fill at the fire.
    pub window_fill: usize,
    /// The domain's hit curve with its taint label (hit-curve metric
    /// only). The label travels with the sample so a converter can
    /// preserve taint end to end instead of silently declassifying.
    pub hit_curve: Option<Labeled<untangle_sim::umon::HitCurve>>,
    /// The domain's footprint with its taint label (footprint metric
    /// only).
    pub footprint_bytes: Option<Labeled<u64>>,
}

/// The utilization metric instance of one domain.
enum DomainMetric {
    Hits(HitCurveMetric),
    Footprint(FootprintMetric),
}

impl DomainMetric {
    fn observe(&mut self, instr: &untangle_trace::Instr) {
        match self {
            DomainMetric::Hits(m) => m.observe(instr),
            DomainMetric::Footprint(m) => m.observe(instr),
        }
    }
}

struct DomainState {
    metric: Option<DomainMetric>,
    time_sched: Option<TimeSchedule>,
    prog_sched: Option<ProgressSchedule>,
    /// The per-domain decision step machinery (accountant, trace,
    /// pending delayed action, logical size, delay RNG) — shared with
    /// the serve daemon, see [`crate::decision`].
    decision: DecisionCore,
    warmup_done: bool,
    warmup_snap: DomainStats,
    finished: bool,
    final_stats: DomainStats,
    exhausted: bool,
    samples: Vec<PartitionSize>,
    next_sample_at: f64,
}

/// Drives N workloads under one scheme. See the crate-level example.
pub struct Runner {
    config: RunnerConfig,
    system: System,
    sources: Vec<Box<dyn TraceSource>>,
    states: Vec<DomainState>,
}

impl Runner {
    /// Builds a runner for one workload per domain.
    ///
    /// For the Untangle scheme this precomputes the `R_max` rate table
    /// (a few Dinkelbach solves).
    ///
    /// # Errors
    ///
    /// * [`UntangleError::InvalidConfig`] — no sources, or the initial
    ///   partitions oversubscribe the LLC.
    /// * Any `untangle-info` error from the `R_max` rate-model build
    ///   (Untangle scheme only), converted via `From<InfoError>`.
    pub fn new(
        config: RunnerConfig,
        sources: Vec<Box<dyn TraceSource>>,
    ) -> Result<Self, UntangleError> {
        let domains = sources.len();
        if domains == 0 {
            return Err(UntangleError::InvalidConfig(
                "runner needs at least one trace source".to_string(),
            ));
        }
        let mode = match config.kind {
            SchemeKind::Shared => LlcMode::Shared,
            _ => LlcMode::Partitioned,
        };
        if mode == LlcMode::Partitioned
            && domains as u64 * config.initial_partition.bytes() > config.machine.llc_bytes
        {
            return Err(UntangleError::InvalidConfig(format!(
                "initial partitions oversubscribe the LLC: {domains} domains x {} bytes > {} bytes",
                config.initial_partition.bytes(),
                config.machine.llc_bytes
            )));
        }
        let mut system = System::new(config.machine.clone(), domains, mode);
        for d in 0..domains {
            system.resize(d, config.initial_partition);
        }

        let accounting = match config.kind {
            SchemeKind::Time => AccountingMode::PerAssessment {
                bits: SchemeParams::conventional_bits_per_assessment(),
            },
            SchemeKind::Untangle => {
                let model = config
                    .params
                    .build_rate_model(config.machine.timing.commit_width)?;
                AccountingMode::RateTable {
                    table: model.table,
                    cycles_per_unit: model.cycles_per_unit,
                    cooldown_units: model.cooldown_units,
                    delay_units: model.delay_units,
                    optimized: config.params.optimized_accounting,
                }
            }
            // Static/Shared never assess; SecDCP's tiered flows are
            // permitted by its security model, so nothing is charged.
            _ => AccountingMode::PerAssessment { bits: 0.0 },
        };

        let tier_of = |d: usize| {
            config
                .tiers
                .as_ref()
                .and_then(|t| t.get(d))
                .copied()
                .unwrap_or(DomainTier::Sensitive)
        };
        let states = (0..domains)
            .map(|d| DomainState {
                metric: {
                    let policy = match config.kind {
                        SchemeKind::Untangle => {
                            Some(config.metric_policy.unwrap_or(MetricPolicy::PublicOnly))
                        }
                        SchemeKind::Time => Some(config.metric_policy.unwrap_or(MetricPolicy::All)),
                        SchemeKind::SecDcp if tier_of(d) == DomainTier::Public => {
                            Some(config.metric_policy.unwrap_or(MetricPolicy::All))
                        }
                        _ => None,
                    };
                    policy.map(|policy| match config.params.metric_kind {
                        MetricKind::HitCurve => {
                            DomainMetric::Hits(HitCurveMetric::new(&config.machine, policy))
                        }
                        MetricKind::Footprint => DomainMetric::Footprint(FootprintMetric::new(
                            config.params.footprint_window,
                            policy,
                        )),
                    })
                },
                time_sched: (config.kind == SchemeKind::Time
                    || (config.kind == SchemeKind::SecDcp && tier_of(d) == DomainTier::Public))
                    .then(|| TimeSchedule::new(config.params.time_interval_cycles)),
                prog_sched: (config.kind == SchemeKind::Untangle)
                    .then(|| ProgressSchedule::new(config.params.progress_interval_instrs)),
                decision: DecisionCore::new(
                    LeakageAccountant::new(accounting.clone(), config.params.leakage_budget_bits),
                    config.initial_partition,
                    TraceRng::new(config.seed.wrapping_add(d as u64).wrapping_mul(0x9e37)),
                    config.params.delay_max_cycles,
                ),
                warmup_done: false,
                warmup_snap: DomainStats::default(),
                finished: false,
                final_stats: DomainStats::default(),
                exhausted: false,
                samples: Vec::new(),
                next_sample_at: 0.0,
            })
            .collect();

        Ok(Self {
            config,
            system,
            sources,
            states,
        })
    }

    /// Runs until every domain has retired its measured slice (finished
    /// domains keep applying pressure), then reports.
    pub fn run(self) -> RunReport {
        self.run_with_tap(|_| {})
    }

    /// Like [`Runner::run`], but invokes `tap` with a
    /// [`TelemetrySample`] at every schedule fire — before the budget
    /// gate, and regardless of warmup state — carrying the decision
    /// inputs that assessment sees. The exported stream is exactly the
    /// telemetry a decision service would have needed to reach the same
    /// decisions, which is how the serve equivalence tests replay a
    /// batch run through `untangle-serve`.
    pub fn run_with_tap<F: FnMut(TelemetrySample)>(mut self, mut tap: F) -> RunReport {
        let domains = self.sources.len();
        let mut remaining = domains;
        while remaining > 0 {
            let d = self.system.laggard();
            if self.states[d].exhausted {
                // A finite source ran dry: idle the domain so others can
                // make progress; it exerts no further pressure.
                self.system
                    .stall(d, self.config.params.time_interval_cycles.max(1.0));
                continue;
            }
            if self.step_domain(d, &mut tap) {
                remaining -= 1;
            }
        }
        self.into_report()
    }

    /// Snapshots the decision inputs of `domain` for the telemetry tap.
    fn telemetry_sample(&self, domain: usize, now: f64) -> TelemetrySample {
        let st = &self.states[domain];
        let (window_fill, hit_curve, footprint_bytes) = match &st.metric {
            Some(DomainMetric::Hits(m)) => (m.window_fill(), Some(m.hit_curve()), None),
            Some(DomainMetric::Footprint(m)) => (m.window_fill(), None, Some(m.footprint_bytes())),
            None => (0, None, None),
        };
        TelemetrySample {
            domain,
            cycles: now,
            progress_instrs: st
                .prog_sched
                .as_ref()
                .map_or(0, ProgressSchedule::interval_instrs),
            window_fill,
            hit_curve,
            footprint_bytes,
        }
    }

    /// Steps one instruction of `domain`; returns `true` if the domain
    /// finished its slice on this step.
    fn step_domain<F: FnMut(TelemetrySample)>(&mut self, domain: usize, tap: &mut F) -> bool {
        let Some(event) = self.system.step(domain, &mut self.sources[domain]) else {
            self.states[domain].exhausted = true;
            // An exhausted domain that never finished its slice finishes
            // now with whatever it retired.
            if !self.states[domain].finished {
                self.states[domain].finished = true;
                self.states[domain].final_stats = self.system.stats(domain);
                return true;
            }
            return false;
        };
        let now = event.cycles;

        // Apply a pending resize whose delay has elapsed.
        if let Some(size) = self.states[domain].decision.take_due(now) {
            self.system.resize(domain, size);
        }

        // Feed the metric and the schedule.
        if let Some(metric) = &mut self.states[domain].metric {
            metric.observe(&event.instr);
        }
        // The domain clock reflects secret-dependent execution timing,
        // so it enters the wall-clock schedule as `Secret` (the schedule
        // declassifies it at its named Edge ③ site). Progress counts are
        // public by the §6 annotation contract, so Untangle's schedule
        // sees only `Public` inputs and its fail-closed guard stays
        // silent.
        let assess = if let Some(sched) = self.states[domain].time_sched.as_mut() {
            sched.on_retire(Labeled::secret(now)) == ScheduleEvent::Assess
        } else if let Some(sched) = self.states[domain].prog_sched.as_mut() {
            sched.on_retire(Labeled::public(event.instr.counts_toward_progress()))
                == ScheduleEvent::Assess
        } else {
            false
        };
        if assess {
            tap(self.telemetry_sample(domain, now));
            match self.states[domain].decision.gate(now) {
                BudgetGate::Skip => {}
                BudgetGate::MaintainOnly => self.assess_inner(domain, now, true),
                BudgetGate::Proceed => self.assess_inner(domain, now, false),
            }
        }

        // Warmup bookkeeping.
        let warmed = match self.config.warmup_instrs {
            Some(n) => self.system.stats(domain).instructions >= n,
            None => now >= self.config.warmup_cycles,
        };
        if !self.states[domain].warmup_done && warmed {
            let st = &mut self.states[domain];
            st.warmup_done = true;
            st.warmup_snap = self.system.stats(domain);
            st.decision.reset_measurement();
            st.samples.clear();
            st.next_sample_at = now;
        }

        // Partition-size sampling during the measured phase.
        if self.states[domain].warmup_done
            && !self.states[domain].finished
            && now >= self.states[domain].next_sample_at
        {
            let st = &mut self.states[domain];
            st.samples.push(self.system.partition_size(domain));
            while st.next_sample_at <= now {
                st.next_sample_at += self.config.sample_interval_cycles;
            }
        }

        // Slice completion.
        if self.states[domain].warmup_done && !self.states[domain].finished {
            let retired = self.system.stats(domain).instructions
                - self.states[domain].warmup_snap.instructions;
            if retired >= self.config.slice_instrs {
                self.states[domain].finished = true;
                self.states[domain].final_stats = self.system.stats(domain);
                return true;
            }
        }
        false
    }

    /// Performs one resizing assessment for `domain` at cycle `now`.
    /// With `forced_maintain`, the leakage budget bars visible actions
    /// and the assessment records a Maintain regardless of demand.
    fn assess_inner(&mut self, domain: usize, now: f64, forced_maintain: bool) {
        let current = self.states[domain].decision.logical_size();
        // Capacity accounting over *logical* sizes: decided-but-not-yet
        // -applied actions already own (or have released) their bytes,
        // so concurrent assessments can neither oversubscribe the LLC
        // nor observe each other's delay draws.
        let llc_bytes = self.config.machine.llc_bytes;
        let assigned: u64 = self
            .states
            .iter()
            .map(|s| s.decision.logical_size().bytes())
            .sum();
        let free = llc_bytes.saturating_sub(assigned);

        let action = if forced_maintain {
            Action::set_size(current)
        } else {
            // Only scheme kinds that install a metric also install a
            // schedule, so assessments imply a metric; if that invariant
            // ever slips, skip the assessment rather than panic mid-run.
            let Some(metric) = self.states[domain].metric.as_ref() else {
                return;
            };
            match metric {
                DomainMetric::Hits(m) => {
                    // Global hit maximization (§7): consult every
                    // domain's public curve, apply only our component.
                    // Domains without a hit-curve metric (Static-tier
                    // domains under SecDCP) contribute a flat curve, so
                    // the chooser leaves them at the minimum and they
                    // never act anyway.
                    let fill = m.window_fill();
                    // Fold the labeled curves; the collection carries the
                    // join of every curve's label, and crossing into the
                    // heuristic is the declassification. On Untangle's
                    // default public-only path the join is `Public` and
                    // the declassify records nothing; a tainted curve
                    // (conventional metric, or the all-seeing ablation
                    // override on Untangle) is recorded at a site naming
                    // *why* it was tainted.
                    let mut curves = Labeled::public(Vec::with_capacity(self.states.len()));
                    for st in &self.states {
                        let curve = match &st.metric {
                            Some(DomainMetric::Hits(m)) => m.hit_curve(),
                            _ => Labeled::public([0; untangle_sim::config::PartitionSize::COUNT]),
                        };
                        curves = curves.combine(curve, |mut v, c| {
                            v.push(c);
                            v
                        });
                    }
                    let site = match self.config.kind {
                        SchemeKind::Untangle => sites::METRIC_POLICY_OVERRIDE,
                        _ => sites::CONVENTIONAL_METRIC,
                    };
                    let curves = curves.declassify(site);
                    heuristic::decide_global(
                        &curves,
                        domain,
                        fill,
                        current,
                        free,
                        llc_bytes,
                        &self.config.params.heuristic,
                    )
                }
                DomainMetric::Footprint(m) => {
                    let site = match self.config.kind {
                        SchemeKind::Untangle => sites::METRIC_POLICY_OVERRIDE,
                        _ => sites::CONVENTIONAL_FOOTPRINT,
                    };
                    heuristic::decide_by_footprint(
                        m.footprint_bytes().declassify(site),
                        m.window_fill(),
                        current,
                        free,
                        self.config.params.footprint_headroom,
                        &self.config.params.heuristic,
                    )
                }
            }
        };
        // Classification, accounting, the delay draw, trace recording,
        // and the pending switch all happen inside the shared decision
        // core — the serve daemon runs the same step.
        let committed = self.states[domain].decision.commit(action, now);
        let class = committed.class;
        if obs::enabled() {
            // One counter per (scheme, decision class), e.g.
            // `runner.decisions.untangle.maintain`.
            let kind = self.config.kind.name().to_ascii_lowercase();
            obs::counter_add(&format!("runner.decisions.{kind}.{}", class.name()), 1);
        }

        if !class.is_visible() && self.config.squeeze {
            // Active attacker: immediately squeeze the maintained
            // partition, forcing the next assessment toward a visible
            // expansion (§6.2). This is an attacker act, not a victim
            // resizing action, so it does not enter the victim's trace.
            if let Some(smaller) = current.next_down() {
                self.system.resize(domain, smaller);
            }
        }
    }

    fn into_report(self) -> RunReport {
        let domains = self
            .states
            .into_iter()
            .map(|st| {
                let (trace, leakage) = st.decision.into_results();
                DomainReport {
                    stats: st.final_stats.since(&st.warmup_snap),
                    trace,
                    leakage,
                    size_samples: st.samples,
                }
            })
            .collect();
        RunReport {
            kind: self.config.kind,
            domains,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use untangle_trace::synth::{CryptoConfig, CryptoModel, WorkingSetConfig, WorkingSetModel};

    fn ws_source(ws_bytes: u64, seed: u64) -> Box<dyn TraceSource> {
        Box::new(WorkingSetModel::new(
            WorkingSetConfig {
                working_set_bytes: ws_bytes,
                ..WorkingSetConfig::default()
            },
            seed,
        ))
    }

    #[test]
    fn new_rejects_bad_configurations_with_typed_errors() {
        // No sources.
        let config = RunnerConfig::test_scale(SchemeKind::Untangle, 1);
        assert!(matches!(
            Runner::new(config, vec![]),
            Err(UntangleError::InvalidConfig(_))
        ));

        // Oversubscribed LLC: three half-LLC partitions in a 16 MB cache.
        let config = RunnerConfig {
            initial_partition: PartitionSize::MB8,
            ..RunnerConfig::test_scale(SchemeKind::Static, 3)
        };
        let sources = vec![
            ws_source(1 << 20, 1),
            ws_source(1 << 20, 2),
            ws_source(1 << 20, 3),
        ];
        assert!(matches!(
            Runner::new(config, sources),
            Err(UntangleError::InvalidConfig(_))
        ));
    }

    #[test]
    fn eval_scale_rejects_out_of_range_scales() {
        for bad in [0.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                RunnerConfig::eval_scale(SchemeKind::Untangle, bad),
                Err(UntangleError::InvalidConfig(_))
            ));
        }
        let ok = RunnerConfig::eval_scale(SchemeKind::Untangle, 0.001).unwrap();
        assert!(ok.slice_instrs > 0);
    }

    #[test]
    fn static_scheme_never_resizes() {
        let config = RunnerConfig::test_scale(SchemeKind::Static, 1);
        let report = Runner::new(config, vec![ws_source(1 << 20, 1)])
            .expect("runner")
            .run();
        let d = &report.domains[0];
        assert!(d.trace.is_empty());
        assert_eq!(d.leakage.assessments, 0);
        assert!(d.size_samples.iter().all(|&s| s == PartitionSize::MB2));
    }

    #[test]
    fn time_scheme_charges_log2_9_per_assessment() {
        let config = RunnerConfig::test_scale(SchemeKind::Time, 1);
        let report = Runner::new(config, vec![ws_source(1 << 20, 1)])
            .expect("runner")
            .run();
        let d = &report.domains[0];
        assert!(d.leakage.assessments > 0, "time scheme must assess");
        assert!(
            (d.leakage.bits_per_assessment() - 9f64.log2()).abs() < 1e-9,
            "got {}",
            d.leakage.bits_per_assessment()
        );
    }

    #[test]
    fn untangle_leaks_less_per_assessment_than_time() {
        let run = |kind| {
            let config = RunnerConfig::test_scale(kind, 1);
            Runner::new(config, vec![ws_source(1 << 20, 1)])
                .expect("runner")
                .run()
                .domains[0]
                .leakage
        };
        let time = run(SchemeKind::Time);
        let untangle = run(SchemeKind::Untangle);
        assert!(untangle.assessments > 0);
        assert!(
            untangle.bits_per_assessment() < time.bits_per_assessment(),
            "untangle {} !< time {}",
            untangle.bits_per_assessment(),
            time.bits_per_assessment()
        );
    }

    #[test]
    fn untangle_maintains_dominate_in_steady_state() {
        let config = RunnerConfig::test_scale(SchemeKind::Untangle, 1);
        let report = Runner::new(config, vec![ws_source(512 << 10, 3)])
            .expect("runner")
            .run();
        let d = &report.domains[0];
        assert!(d.leakage.assessments >= 4);
        assert!(
            d.leakage.maintain_fraction() > 0.5,
            "steady workload should mostly Maintain: {}",
            d.leakage.maintain_fraction()
        );
    }

    #[test]
    fn partition_sum_never_exceeds_llc() {
        // Two LLC-hungry domains compete; invariant must hold at the end
        // and sampled sizes must be supported sizes.
        let config = RunnerConfig::test_scale(SchemeKind::Untangle, 2);
        let report = Runner::new(config, vec![ws_source(6 << 20, 1), ws_source(6 << 20, 2)])
            .expect("runner")
            .run();
        for d in &report.domains {
            assert!(!d.size_samples.is_empty());
        }
        let _ = report.geomean_ipc();
    }

    #[test]
    fn leakage_budget_freezes_resizing() {
        let mut config = RunnerConfig::test_scale(SchemeKind::Time, 1);
        config.params.leakage_budget_bits = Some(7.0); // ~2 assessments
        let report = Runner::new(config, vec![ws_source(4 << 20, 1)])
            .expect("runner")
            .run();
        let d = &report.domains[0];
        assert!(
            d.leakage.total_bits <= 7.0 + 9f64.log2(),
            "budget must cap leakage: {}",
            d.leakage.total_bits
        );
        // Far fewer assessments than an unfrozen run would make.
        assert!(d.leakage.assessments <= 3);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let config = RunnerConfig::test_scale(SchemeKind::Untangle, 1);
            Runner::new(config, vec![ws_source(2 << 20, 9)])
                .expect("runner")
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.domains[0].trace, b.domains[0].trace);
        assert_eq!(a.domains[0].stats, b.domains[0].stats);
    }

    #[test]
    fn squeeze_increases_visible_actions() {
        let run = |squeeze| {
            let mut config = RunnerConfig::test_scale(SchemeKind::Untangle, 1);
            config.squeeze = squeeze;
            Runner::new(config, vec![ws_source(1 << 20, 5)])
                .expect("runner")
                .run()
                .domains[0]
                .leakage
        };
        let calm = run(false);
        let attacked = run(true);
        assert!(
            attacked.visible_actions >= calm.visible_actions,
            "squeeze must not reduce visible actions"
        );
    }

    #[test]
    fn worst_case_accounting_with_budget_skips_assessments() {
        let mut config = RunnerConfig::test_scale(SchemeKind::Untangle, 1);
        config.params.optimized_accounting = false;
        config.params.leakage_budget_bits = Some(4.0);
        let report = Runner::new(config, vec![ws_source(3 << 20, 5)])
            .expect("runner")
            .run();
        let d = &report.domains[0];
        // Worst-case mode charges every assessment; the gate must stop
        // before the 4-bit budget is crossed.
        assert!(
            d.leakage.total_bits <= 4.0 + 1e-9,
            "{}",
            d.leakage.total_bits
        );
    }

    #[test]
    fn squeeze_under_budget_still_never_exceeds_threshold() {
        let mut config = RunnerConfig::test_scale(SchemeKind::Untangle, 1);
        config.squeeze = true;
        config.params.leakage_budget_bits = Some(6.0);
        let report = Runner::new(config, vec![ws_source(2 << 20, 5)])
            .expect("runner")
            .run();
        // §6.2/§9: an active attacker can burn the budget faster but
        // cannot violate the guarantee.
        assert!(report.domains[0].leakage.total_bits <= 6.0 + 1e-9);
    }

    #[test]
    fn secdcp_public_domain_uses_time_schedule() {
        use crate::scheme::DomainTier;
        let mut config = RunnerConfig::test_scale(SchemeKind::SecDcp, 1);
        config.tiers = Some(vec![DomainTier::Public]);
        let report = Runner::new(config, vec![ws_source(4 << 20, 1)])
            .expect("runner")
            .run();
        let d = &report.domains[0];
        assert!(d.leakage.assessments > 0);
        assert_eq!(d.leakage.total_bits, 0.0, "tiered flows are free");
    }

    #[test]
    fn quartiles_summarize_samples() {
        let config = RunnerConfig::test_scale(SchemeKind::Static, 1);
        let report = Runner::new(config, vec![ws_source(1 << 20, 1)])
            .expect("runner")
            .run();
        let (min, q1, med, q3, max) = report.domains[0].size_quartiles().unwrap();
        // Static never moves: all quartiles equal the 2 MB start.
        assert_eq!(min, PartitionSize::MB2);
        assert_eq!(q1, PartitionSize::MB2);
        assert_eq!(med, PartitionSize::MB2);
        assert_eq!(q3, PartitionSize::MB2);
        assert_eq!(max, PartitionSize::MB2);
    }

    #[test]
    fn global_allocation_converges_to_the_hungry_domain() {
        // One 6 MB working set among three tiny ones: the hungry domain
        // must end up with a strictly larger partition.
        let config = RunnerConfig::test_scale(SchemeKind::Untangle, 4);
        let report = Runner::new(
            config,
            vec![
                ws_source(6 << 20, 1),
                ws_source(256 << 10, 2),
                ws_source(256 << 10, 3),
                ws_source(256 << 10, 4),
            ],
        )
        .expect("runner")
        .run();
        let final_size = |d: usize| *report.domains[d].size_samples.last().expect("samples");
        assert!(
            final_size(0) > final_size(1),
            "hungry {} !> tiny {}",
            final_size(0),
            final_size(1)
        );
        // Logical capacity accounting: the final sizes never
        // oversubscribe the LLC.
        let total: u64 = (0..4).map(|d| final_size(d).bytes()).sum();
        assert!(total <= 16 << 20, "total {total}");
    }

    #[test]
    fn metric_policy_override_changes_behavior() {
        use crate::metric::MetricPolicy;
        // An Untangle run whose metric sees everything reacts to
        // secret-annotated demand; the default public-only one does not.
        use untangle_trace::snippets::secret_gated_traversal;
        use untangle_trace::source::TraceSource as _;
        let run = |policy: Option<MetricPolicy>, secret: bool| {
            let public = WorkingSetModel::new(
                WorkingSetConfig {
                    working_set_bytes: 512 << 10,
                    ..WorkingSetConfig::default()
                },
                3,
            )
            .take_instrs(150_000);
            let gated = secret_gated_traversal(
                secret,
                4 << 20,
                untangle_trace::LineAddr::new(1 << 30),
                true,
            )
            .chain(secret_gated_traversal(
                secret,
                4 << 20,
                untangle_trace::LineAddr::new(1 << 30),
                true,
            ));
            let tail = WorkingSetModel::new(WorkingSetConfig::default(), 4).take_instrs(150_000);
            let mut config = RunnerConfig::test_scale(SchemeKind::Untangle, 1);
            config.warmup_cycles = 0.0;
            config.slice_instrs = u64::MAX;
            config.metric_policy = policy;
            Runner::new(config, vec![Box::new(public.chain(gated).chain(tail))])
                .expect("runner")
                .run()
                .domains[0]
                .trace
                .action_sequence()
        };
        assert_eq!(run(None, false), run(None, true), "public-only is blind");
        assert_ne!(
            run(Some(MetricPolicy::All), false),
            run(Some(MetricPolicy::All), true),
            "the all-seeing override must react to the gated traversal"
        );
    }

    #[test]
    fn footprint_metric_variant_adapts_too() {
        use crate::scheme::MetricKind;
        let mut config = RunnerConfig::test_scale(SchemeKind::Untangle, 1);
        config.params.metric_kind = MetricKind::Footprint;
        let report = Runner::new(config, vec![ws_source(3 << 20, 5)])
            .expect("runner")
            .run();
        let d = &report.domains[0];
        assert!(d.leakage.assessments > 0);
        // A 3 MB working set must pull the partition above the 2 MB
        // start under the footprint rule.
        let (_, _, median, _, _) = d.size_quartiles().expect("samples exist");
        assert!(median >= PartitionSize::MB2, "median {median}");
        assert!(
            d.size_samples.iter().any(|&s| s > PartitionSize::MB2),
            "footprint rule should expand for a 3 MB working set"
        );
    }

    #[test]
    fn secdcp_sensitive_domains_never_resize() {
        use crate::scheme::DomainTier;
        let mut config = RunnerConfig::test_scale(SchemeKind::SecDcp, 2);
        config.tiers = Some(vec![DomainTier::Public, DomainTier::Sensitive]);
        let report = Runner::new(config, vec![ws_source(4 << 20, 1), ws_source(4 << 20, 2)])
            .expect("runner")
            .run();
        // The public domain adapts; the sensitive one is pinned at 2 MB.
        assert!(report.domains[0].leakage.assessments > 0);
        assert_eq!(report.domains[1].leakage.assessments, 0);
        assert!(report.domains[1]
            .size_samples
            .iter()
            .all(|&s| s == PartitionSize::MB2));
        // SecDCP's tiered model charges nothing.
        assert_eq!(report.domains[0].leakage.total_bits, 0.0);
    }

    #[test]
    fn secdcp_defaults_to_all_sensitive_i_e_static() {
        // The paper's point (§10): with mutually-distrusting peers that
        // all handle secrets, SecDCP cannot resize anyone.
        let config = RunnerConfig::test_scale(SchemeKind::SecDcp, 1);
        let report = Runner::new(config, vec![ws_source(4 << 20, 1)])
            .expect("runner")
            .run();
        assert_eq!(report.domains[0].leakage.assessments, 0);
        assert!(report.domains[0].trace.is_empty());
    }

    #[test]
    fn untangle_decision_path_records_no_declassification() {
        use crate::taint::audit;
        let config = RunnerConfig::test_scale(SchemeKind::Untangle, 1);
        let (report, log) = audit::capture(|| {
            Runner::new(config, vec![ws_source(1 << 20, 1)])
                .expect("runner")
                .run()
        });
        assert!(report.domains[0].leakage.assessments > 0);
        assert!(
            log.is_clean(),
            "Untangle's default path must neither declassify nor trip the guard: {log:?}"
        );
    }

    #[test]
    fn time_decision_path_records_named_declassify_sites() {
        use crate::taint::audit;
        let config = RunnerConfig::test_scale(SchemeKind::Time, 1);
        let (report, log) = audit::capture(|| {
            Runner::new(config, vec![ws_source(1 << 20, 1)])
                .expect("runner")
                .run()
        });
        assert!(report.domains[0].leakage.assessments > 0);
        let sites_hit: Vec<_> = log.declassified.iter().map(|s| s.site).collect();
        assert!(sites_hit.contains(&sites::TIME_SCHEDULE_WALL_CLOCK));
        assert!(sites_hit.contains(&sites::CONVENTIONAL_METRIC));
        assert!(log.violations.is_empty());
    }

    #[test]
    fn untangle_all_seeing_override_records_the_override_site() {
        use crate::taint::audit;
        let mut config = RunnerConfig::test_scale(SchemeKind::Untangle, 1);
        config.metric_policy = Some(MetricPolicy::All);
        let (_, log) = audit::capture(|| {
            Runner::new(config, vec![ws_source(1 << 20, 1)])
                .expect("runner")
                .run()
        });
        let sites_hit: Vec<_> = log.declassified.iter().map(|s| s.site).collect();
        assert_eq!(sites_hit, vec![sites::METRIC_POLICY_OVERRIDE]);
    }

    #[test]
    fn tap_exports_every_schedule_fire_with_decision_inputs() {
        let config = RunnerConfig::test_scale(SchemeKind::Untangle, 1);
        let interval = config.params.progress_interval_instrs;
        let mut samples = Vec::new();
        let report = Runner::new(config, vec![ws_source(1 << 20, 1)])
            .expect("runner")
            .run_with_tap(|s| samples.push(s));
        // The tap fires on every schedule fire including pre-warmup
        // ones, so it sees at least the measured assessments.
        assert!(samples.len() as u64 >= report.domains[0].leakage.assessments);
        for s in &samples {
            assert_eq!(s.domain, 0);
            assert_eq!(s.progress_instrs, interval);
            assert!(s.footprint_bytes.is_none());
            // Untangle's public-only metric exports a public curve.
            assert!(s.hit_curve.expect("curve").public_value().is_some());
        }
        // Fires are strictly ordered in domain time.
        assert!(samples.windows(2).all(|w| w[0].cycles < w[1].cycles));
    }

    #[test]
    fn crypto_annotations_keep_untangle_trace_secret_independent() {
        // Same public benchmark interleaved with crypto whose secret
        // differs: Untangle's action sequences must be identical.
        let run = |secret: u64| {
            let crypto = CryptoModel::new(
                CryptoConfig {
                    secret,
                    secret_scales_footprint: true,
                    region_base: untangle_trace::LineAddr::new(1 << 40),
                    ..CryptoConfig::default()
                },
                11,
            );
            let public = WorkingSetModel::new(
                WorkingSetConfig {
                    working_set_bytes: 3 << 20,
                    ..WorkingSetConfig::default()
                },
                11,
            );
            let mix = untangle_trace::source::Interleave::new(crypto, 2_000, public, 20_000);
            let config = RunnerConfig::test_scale(SchemeKind::Untangle, 1);
            Runner::new(config, vec![Box::new(mix)])
                .expect("runner")
                .run()
                .domains[0]
                .trace
                .action_sequence()
        };
        assert_eq!(
            run(0),
            run(3),
            "action sequence must not depend on the secret"
        );
    }
}
