//! The action heuristic (Table 2): picking a resizing action from the
//! utilization metric.
//!
//! At an assessment, the heuristic sees the domain's hit curve (expected
//! LLC hits under every candidate size within the monitor window) and
//! the capacity budget it may occupy (its current partition plus the
//! LLC's unassigned capacity). It picks the **smallest affordable size
//! whose hits are within a slack band of the best affordable hits** —
//! the same "adequate size" idea the paper uses to classify benchmarks
//! (§8), applied online. Domains with flat curves therefore shrink and
//! release capacity; domains whose curve keeps rising claim what is
//! free; domains in steady state pick their current size, i.e.
//! `Maintain` — which §9 reports as the outcome of ~90 % of
//! assessments.

use crate::action::Action;
use untangle_sim::config::PartitionSize;
use untangle_sim::umon::{choose_partitions, HitCurve};

/// Tunables of the size-selection rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeuristicConfig {
    /// Hits within `slack_fraction × window_fill` of the best affordable
    /// size count as "good enough"; the smallest such size wins.
    pub slack_fraction: f64,
    /// Hysteresis: an expansion must gain at least
    /// `expand_gain_fraction × window_fill` hits over the current size,
    /// and a shrink must lose at most
    /// `shrink_loss_fraction × window_fill` hits, or the heuristic
    /// maintains. Asymmetric margins prevent noise-driven flapping
    /// between adjacent sizes — every flap is an attacker-visible
    /// action, so damping them is both a performance and a leakage win.
    pub expand_gain_fraction: f64,
    /// See [`HeuristicConfig::expand_gain_fraction`].
    pub shrink_loss_fraction: f64,
    /// Below this many monitored accesses in the window the heuristic
    /// refuses to act (returns the current size ⇒ Maintain): an empty
    /// window carries no signal.
    pub min_window_fill: usize,
    /// Shrinks are demand-driven: a domain only releases capacity while
    /// the LLC's unassigned pool is below this threshold. This mirrors
    /// UMON-style global-utility allocation, where capacity moves only
    /// to where it buys hits — never into an idle pool.
    pub shrink_free_threshold: u64,
}

impl Default for HeuristicConfig {
    fn default() -> Self {
        Self {
            slack_fraction: 0.02,
            expand_gain_fraction: 0.04,
            shrink_loss_fraction: 0.01,
            min_window_fill: 64,
            shrink_free_threshold: 2 << 20,
        }
    }
}

/// Picks the action for one domain.
///
/// * `curve` — hits per candidate size over the window;
/// * `window_fill` — number of monitored accesses in the window;
/// * `current` — the domain's current partition size;
/// * `free_bytes` — the LLC's unassigned capacity; the domain may
///   occupy `current + free` after the action, and only releases
///   capacity while `free` is scarce.
///
/// The returned action always selects an affordable size; if nothing
/// beats the slack rule, it selects `current` (a Maintain).
pub fn decide(
    curve: &HitCurve,
    window_fill: usize,
    current: PartitionSize,
    free_bytes: u64,
    config: &HeuristicConfig,
) -> Action {
    let budget_bytes = current.bytes() + free_bytes;
    if window_fill < config.min_window_fill {
        return Action::set_size(current);
    }
    let affordable = |s: PartitionSize| s.bytes() <= budget_bytes.max(current.bytes());
    let best_hits = PartitionSize::ALL
        .iter()
        .filter(|s| affordable(**s))
        .map(|s| curve[s.index()])
        .max()
        .unwrap_or(0);
    let slack = (config.slack_fraction * window_fill as f64).ceil() as u64;
    let threshold = best_hits.saturating_sub(slack);
    let target = PartitionSize::ALL
        .into_iter()
        .find(|&s| affordable(s) && curve[s.index()] >= threshold)
        .unwrap_or(current);

    // Hysteresis around the current size.
    let cur_hits = curve[current.index()];
    let tgt_hits = curve[target.index()];
    let decided = if target > current {
        let gain_margin = (config.expand_gain_fraction * window_fill as f64).ceil() as u64;
        if tgt_hits > cur_hits.saturating_add(gain_margin) {
            target
        } else {
            current
        }
    } else if target < current {
        let loss_margin = (config.shrink_loss_fraction * window_fill as f64).ceil() as u64;
        if free_bytes >= config.shrink_free_threshold {
            // Nobody is starved for capacity: releasing it buys nothing.
            current
        } else if cur_hits.saturating_sub(tgt_hits) <= loss_margin {
            // Shrink at most one supported size per assessment: capacity
            // is released gradually, so a noisy window can never crater
            // the partition in a single action.
            current.next_down().unwrap_or(current).max(target)
        } else {
            current
        }
    } else {
        current
    };
    Action::set_size(decided)
}

/// The paper's action heuristic (§7): "during a resizing assessment,
/// the monitor picks the size for each domain that maximizes the
/// number of LLC hits across all domains". Each domain, at *its own*
/// assessment, consults the global allocation and applies only its own
/// component — so every resizing action stays in its owner's trace,
/// and the system converges to the global optimum over a few
/// assessment rounds:
///
/// * expansions are capped by the actually-unassigned capacity (a
///   domain never grabs bytes another domain still logically owns);
/// * shrinks release one supported size per assessment, and only while
///   capacity is scarce (an idle pool profits nobody);
/// * the hysteresis margins damp noise-driven flapping.
pub fn decide_global(
    curves: &[HitCurve],
    domain: usize,
    window_fill: usize,
    current: PartitionSize,
    free_bytes: u64,
    llc_bytes: u64,
    config: &HeuristicConfig,
) -> Action {
    assert!(domain < curves.len(), "domain index out of range");
    if window_fill < config.min_window_fill {
        return Action::set_size(current);
    }
    let allocation = choose_partitions(curves, llc_bytes);
    let mut target = allocation[domain];
    while target > current && target.bytes() > current.bytes() + free_bytes {
        match target.next_down() {
            Some(t) => target = t,
            None => break,
        }
    }
    let curve = &curves[domain];
    let cur_hits = curve[current.index()];
    let tgt_hits = curve[target.index()];
    let decided = if target > current {
        let gain_margin = (config.expand_gain_fraction * window_fill as f64).ceil() as u64;
        if tgt_hits > cur_hits.saturating_add(gain_margin) {
            target
        } else {
            current
        }
    } else if target < current {
        if free_bytes >= config.shrink_free_threshold {
            current
        } else {
            current.next_down().unwrap_or(current).max(target)
        }
    } else {
        current
    };
    Action::set_size(decided)
}

/// The footprint-threshold heuristic — the §5.2 example metric turned
/// into a policy, in the spirit of Table 1's threshold-based schemes:
/// pick the smallest supported size that fits the recent public memory
/// footprint with `headroom` (e.g. `1.25` = 25 % slack), then apply
/// the same hysteresis/budget rules as the hit-curve heuristic.
pub fn decide_by_footprint(
    footprint_bytes: u64,
    window_fill: usize,
    current: PartitionSize,
    free_bytes: u64,
    headroom: f64,
    config: &HeuristicConfig,
) -> Action {
    if window_fill < config.min_window_fill {
        return Action::set_size(current);
    }
    let wanted = (footprint_bytes as f64 * headroom.max(1.0)) as u64;
    let mut target = PartitionSize::at_least(wanted);
    // Budget: never grow beyond current + free.
    while target > current && target.bytes() > current.bytes() + free_bytes {
        match target.next_down() {
            Some(t) => target = t,
            None => break,
        }
    }
    let decided = if target > current {
        target
    } else if target < current {
        if free_bytes >= config.shrink_free_threshold {
            current
        } else {
            current.next_down().unwrap_or(current).max(target)
        }
    } else {
        current
    };
    Action::set_size(decided)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: u64 = 16 << 20;

    fn cfg() -> HeuristicConfig {
        HeuristicConfig::default()
    }

    #[test]
    fn flat_curve_shrinks_one_step_when_capacity_is_scarce() {
        let curve: HitCurve = [500; 9];
        let a = decide(&curve, 1000, PartitionSize::MB2, 0, &cfg());
        assert_eq!(a.size, PartitionSize::MB1, "stepwise, demand-driven shrink");
    }

    #[test]
    fn no_shrink_while_capacity_is_plentiful() {
        let curve: HitCurve = [500; 9];
        let a = decide(&curve, 1000, PartitionSize::MB2, 8 << 20, &cfg());
        assert_eq!(a.size, PartitionSize::MB2, "idle pool ⇒ keep capacity");
    }

    #[test]
    fn rising_curve_expands_to_knee() {
        // Hits saturate at 4 MB.
        let mut curve: HitCurve = [0; 9];
        for (i, h) in curve.iter_mut().enumerate() {
            *h = if i >= PartitionSize::MB4.index() {
                900
            } else {
                (i as u64) * 100
            };
        }
        let a = decide(&curve, 1000, PartitionSize::MB2, FULL, &cfg());
        assert_eq!(a.size, PartitionSize::MB4);
    }

    #[test]
    fn steady_state_maintains() {
        // Current size already sits at the knee.
        let mut curve: HitCurve = [100; 9];
        for h in curve.iter_mut().skip(PartitionSize::MB1.index()) {
            *h = 950;
        }
        let a = decide(&curve, 1000, PartitionSize::MB1, FULL, &cfg());
        assert_eq!(a.size, PartitionSize::MB1, "already adequate ⇒ Maintain");
    }

    #[test]
    fn budget_caps_expansion() {
        let mut curve: HitCurve = [0; 9];
        for (i, h) in curve.iter_mut().enumerate() {
            *h = i as u64 * 1000; // always wants more
        }
        // Only 512 kB of free capacity: 1 MB total budget.
        let a = decide(&curve, 1000, PartitionSize::KB512, 512 << 10, &cfg());
        assert_eq!(a.size, PartitionSize::MB1);
    }

    #[test]
    fn current_size_is_always_affordable() {
        // Even a budget below the current size must not force a panic or
        // an unaffordable pick: the domain may keep what it has.
        let curve: HitCurve = [0, 0, 0, 0, 0, 0, 0, 0, 0];
        let a = decide(&curve, 1000, PartitionSize::MB8, 0, &cfg());
        // With zero free bytes, shrinking is allowed (scarcity).
        // Flat curve ⇒ shrink to minimum is fine too; the pick must just
        // be ≤ current.
        assert!(a.size <= PartitionSize::MB8);
    }

    #[test]
    fn slack_tolerates_noise() {
        // 1 % better hits at 8 MB is inside the 2 % slack band: stay
        // small.
        let mut curve: HitCurve = [1000; 9];
        curve[PartitionSize::MB8.index()] = 1009;
        let a = decide(&curve, 1000, PartitionSize::KB128, FULL, &cfg());
        assert_eq!(a.size, PartitionSize::KB128);
        // But a 10 % gain is a real expansion signal.
        let mut strong: HitCurve = [1000; 9];
        strong[PartitionSize::MB8.index()] = 1100;
        let b = decide(&strong, 1000, PartitionSize::KB128, FULL, &cfg());
        assert_eq!(b.size, PartitionSize::MB8);
    }

    #[test]
    fn empty_window_maintains() {
        let mut curve: HitCurve = [0; 9];
        curve[8] = 3; // a few stray hits
        let a = decide(&curve, 3, PartitionSize::MB2, FULL, &cfg());
        assert_eq!(a.size, PartitionSize::MB2);
    }

    #[test]
    fn global_chooser_moves_capacity_under_pressure() {
        let cfg = HeuristicConfig::default();
        // Domain 0 is flat (insensitive); domain 1's hits keep rising.
        let flat: HitCurve = [900; 9];
        let mut hungry: HitCurve = [0; 9];
        for (i, h) in hungry.iter_mut().enumerate() {
            *h = (i as u64 + 1) * 500;
        }
        let curves = [flat, hungry];
        // No free capacity: the flat domain is told to release a step.
        let a = decide_global(&curves, 0, 1000, PartitionSize::MB2, 0, 16 << 20, &cfg);
        assert_eq!(a.size, PartitionSize::MB1, "insensitive domain releases");
        // The hungry domain expands into whatever is free.
        let b = decide_global(
            &curves,
            1,
            1000,
            PartitionSize::MB2,
            4 << 20,
            16 << 20,
            &cfg,
        );
        assert!(
            b.size > PartitionSize::MB2,
            "hungry domain expands: {}",
            b.size
        );
    }

    #[test]
    fn global_chooser_never_exceeds_free_capacity() {
        let cfg = HeuristicConfig::default();
        let mut hungry: HitCurve = [0; 9];
        for (i, h) in hungry.iter_mut().enumerate() {
            *h = (i as u64 + 1) * 500;
        }
        let a = decide_global(
            &[hungry],
            0,
            1000,
            PartitionSize::MB2,
            1 << 20,
            16 << 20,
            &cfg,
        );
        assert!(a.size.bytes() <= (2 << 20) + (1 << 20));
    }

    #[test]
    fn global_chooser_maintains_on_thin_window() {
        let cfg = HeuristicConfig::default();
        let hungry: HitCurve = [0, 1, 2, 3, 4, 5, 6, 7, 800];
        let a = decide_global(&[hungry], 0, 3, PartitionSize::MB2, 8 << 20, 16 << 20, &cfg);
        assert_eq!(a.size, PartitionSize::MB2);
    }

    #[test]
    fn footprint_heuristic_fits_the_footprint() {
        let cfg = HeuristicConfig::default();
        // 3 MB footprint with 25 % headroom needs 4 MB.
        let a = decide_by_footprint(3 << 20, 1000, PartitionSize::MB2, 16 << 20, 1.25, &cfg);
        assert_eq!(a.size, PartitionSize::MB4);
    }

    #[test]
    fn footprint_heuristic_respects_budget() {
        let cfg = HeuristicConfig::default();
        // Wants 8 MB but only 1 MB free above the 2 MB current.
        let a = decide_by_footprint(7 << 20, 1000, PartitionSize::MB2, 1 << 20, 1.0, &cfg);
        assert_eq!(a.size, PartitionSize::MB3);
    }

    #[test]
    fn footprint_heuristic_shrinks_stepwise_under_scarcity() {
        let cfg = HeuristicConfig::default();
        let a = decide_by_footprint(64 << 10, 1000, PartitionSize::MB4, 0, 1.25, &cfg);
        assert_eq!(a.size, PartitionSize::MB3);
        let b = decide_by_footprint(64 << 10, 1000, PartitionSize::MB4, 8 << 20, 1.25, &cfg);
        assert_eq!(
            b.size,
            PartitionSize::MB4,
            "no shrink while capacity is idle"
        );
    }

    #[test]
    fn footprint_heuristic_maintains_on_empty_window() {
        let cfg = HeuristicConfig::default();
        let a = decide_by_footprint(8 << 20, 3, PartitionSize::MB1, 16 << 20, 1.25, &cfg);
        assert_eq!(a.size, PartitionSize::MB1);
    }

    #[test]
    fn decision_is_deterministic() {
        let mut curve: HitCurve = [0; 9];
        for (i, h) in curve.iter_mut().enumerate() {
            *h = (i as u64 * 37) % 400;
        }
        let a = decide(&curve, 500, PartitionSize::MB3, FULL, &cfg());
        let b = decide(&curve, 500, PartitionSize::MB3, FULL, &cfg());
        assert_eq!(a, b);
    }
}
