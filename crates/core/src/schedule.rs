//! Resizing schedules (Table 2, Principle 2 of §5.2).
//!
//! A schedule decides *when* resizing assessments happen:
//!
//! * [`TimeSchedule`] — assess every `T` cycles of wall-clock time, like
//!   prior schemes (Table 1). The utilization metric value at such an
//!   assessment depends on what the program managed to execute in `T`
//!   cycles — i.e. on program timing — so secret-dependent timing
//!   contaminates the *actions* (Edge ③ of Fig. 2).
//! * [`ProgressSchedule`] — assess every `N` progress-counted retired
//!   instructions (Principle 2). With `N = w·T_c` (commit width `w`),
//!   two assessments can never be closer than the cooldown `T_c`
//!   (Mechanism 1), because retiring `N` instructions takes at least
//!   `N/w` cycles.
//!
//! Both schedules take [`Labeled`] inputs. The wall-clock schedule must
//! [`Labeled::declassify`] the (secret-dependent) cycle count to use it
//! — the Edge ③ leak appears as the named site
//! [`sites::TIME_SCHEDULE_WALL_CLOCK`] — while the progress schedule is
//! a public-only interface that rejects secret-labeled counts
//! fail-closed, so Untangle's schedule cannot silently consume tainted
//! progress.

use crate::taint::{sites, Labeled};

/// When the next assessment is due, reported by a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleEvent {
    /// No assessment due yet.
    Idle,
    /// Perform a resizing assessment now.
    Assess,
}

/// The conventional wall-clock schedule: assess every `interval` cycles.
#[derive(Debug, Clone)]
pub struct TimeSchedule {
    interval_cycles: f64,
    next_at: f64,
}

impl TimeSchedule {
    /// Creates a schedule assessing at `interval, 2·interval, …` cycles.
    ///
    /// # Panics
    ///
    /// Panics if the interval is not positive.
    pub fn new(interval_cycles: f64) -> Self {
        assert!(interval_cycles > 0.0, "interval must be positive");
        Self {
            interval_cycles,
            next_at: interval_cycles,
        }
    }

    /// The assessment interval in cycles.
    pub fn interval_cycles(&self) -> f64 {
        self.interval_cycles
    }

    /// The cycle at which the next assessment fires — with
    /// [`TimeSchedule::restore`], the snapshot/restore pair for
    /// crash-consistent replay.
    pub fn next_at(&self) -> f64 {
        self.next_at
    }

    /// Rebuilds a schedule mid-stream from a captured
    /// [`TimeSchedule::next_at`].
    ///
    /// # Panics
    ///
    /// Panics if the interval is not positive.
    pub fn restore(interval_cycles: f64, next_at: f64) -> Self {
        assert!(interval_cycles > 0.0, "interval must be positive");
        Self {
            interval_cycles,
            next_at,
        }
    }

    /// Notifies the schedule of one retired instruction and the domain's
    /// clock after it. At most one assessment fires per retirement even
    /// if the clock jumped past several boundaries (the monitor window
    /// is shared, so back-to-back assessments would be redundant).
    ///
    /// The domain clock reflects secret-dependent execution timing, so a
    /// secret-labeled clock is *declassified* here — this is the visible
    /// Edge ③ site ([`sites::TIME_SCHEDULE_WALL_CLOCK`]) that makes the
    /// conventional schedule's leak auditable.
    pub fn on_retire(&mut self, cycles_now: Labeled<f64>) -> ScheduleEvent {
        let cycles_now = cycles_now.declassify(sites::TIME_SCHEDULE_WALL_CLOCK);
        if cycles_now >= self.next_at {
            // Skip any boundaries the clock already passed.
            while self.next_at <= cycles_now {
                self.next_at += self.interval_cycles;
            }
            ScheduleEvent::Assess
        } else {
            ScheduleEvent::Idle
        }
    }
}

/// Untangle's progress-based schedule: assess every `N` counted retired
/// instructions. Instructions that are control-dependent on secrets
/// (annotated `secret_ctrl`) are *not* counted (§5.2), so the points of
/// assessment in the public instruction stream are secret-independent.
#[derive(Debug, Clone)]
pub struct ProgressSchedule {
    interval_instrs: u64,
    counted: u64,
}

impl ProgressSchedule {
    /// Creates a schedule assessing every `interval_instrs` counted
    /// instructions.
    ///
    /// # Panics
    ///
    /// Panics if the interval is zero.
    pub fn new(interval_instrs: u64) -> Self {
        assert!(interval_instrs > 0, "interval must be positive");
        Self {
            interval_instrs,
            counted: 0,
        }
    }

    /// The cooldown time this schedule structurally guarantees on a core
    /// with the given commit width: `T_c = N / w` cycles (§5.3.2,
    /// Mechanism 1).
    pub fn guaranteed_cooldown_cycles(&self, commit_width: u32) -> f64 {
        self.interval_instrs as f64 / commit_width as f64
    }

    /// The assessment interval in counted instructions.
    pub fn interval_instrs(&self) -> u64 {
        self.interval_instrs
    }

    /// Progress counted since the last assessment — with
    /// [`ProgressSchedule::restore`], the snapshot/restore pair for
    /// crash-consistent replay.
    pub fn progress(&self) -> u64 {
        self.counted
    }

    /// Rebuilds a schedule mid-stream from a captured
    /// [`ProgressSchedule::progress`].
    ///
    /// # Panics
    ///
    /// Panics if the interval is zero.
    pub fn restore(interval_instrs: u64, counted: u64) -> Self {
        assert!(interval_instrs > 0, "interval must be positive");
        Self {
            interval_instrs,
            counted,
        }
    }

    /// Notifies the schedule of one retired instruction.
    ///
    /// `counts` is [`untangle_trace::Instr::counts_toward_progress`] for
    /// the retired instruction. This is a public-only interface: a
    /// secret-labeled count is rejected fail-closed (recorded as a taint
    /// violation at [`sites::PROGRESS_SCHEDULE_INPUT`], not counted), so
    /// secret data cannot influence *when* Untangle assesses.
    pub fn on_retire(&mut self, counts: Labeled<bool>) -> ScheduleEvent {
        let Ok(counts) = counts.require_public(sites::PROGRESS_SCHEDULE_INPUT) else {
            return ScheduleEvent::Idle;
        };
        if !counts {
            return ScheduleEvent::Idle;
        }
        self.counted += 1;
        if self.counted >= self.interval_instrs {
            // Progress toward the next assessment starts immediately
            // after this one is triggered (Fig. 6), so the next action is
            // not influenced by when this one is applied.
            self.counted = 0;
            ScheduleEvent::Assess
        } else {
            ScheduleEvent::Idle
        }
    }

    /// Notifies the schedule of a *batch* of counted retired
    /// instructions — one telemetry event summarizing many retirements,
    /// the serve daemon's ingest granularity.
    ///
    /// At most one assessment fires per call even when the batch spans
    /// several intervals (like [`TimeSchedule::on_retire`] collapsing
    /// skipped boundaries: the utilization metric is shared state, so
    /// back-to-back assessments on the same telemetry would be
    /// redundant); leftover progress carries over modulo the interval.
    /// The same fail-closed guard as [`ProgressSchedule::on_retire`]
    /// applies: a secret-labeled count is dropped and recorded at
    /// [`sites::PROGRESS_SCHEDULE_INPUT`].
    pub fn on_progress(&mut self, counted_instrs: Labeled<u64>) -> ScheduleEvent {
        let Ok(count) = counted_instrs.require_public(sites::PROGRESS_SCHEDULE_INPUT) else {
            return ScheduleEvent::Idle;
        };
        self.counted += count;
        if self.counted >= self.interval_instrs {
            self.counted %= self.interval_instrs;
            ScheduleEvent::Assess
        } else {
            ScheduleEvent::Idle
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taint::audit;

    #[test]
    fn time_schedule_fires_on_boundaries() {
        let mut s = TimeSchedule::new(100.0);
        assert_eq!(s.on_retire(Labeled::secret(50.0)), ScheduleEvent::Idle);
        assert_eq!(s.on_retire(Labeled::secret(100.0)), ScheduleEvent::Assess);
        assert_eq!(s.on_retire(Labeled::secret(150.0)), ScheduleEvent::Idle);
        assert_eq!(s.on_retire(Labeled::secret(205.0)), ScheduleEvent::Assess);
    }

    #[test]
    fn time_schedule_collapses_skipped_boundaries() {
        let mut s = TimeSchedule::new(100.0);
        // A long stall jumps past 3 boundaries: only one assessment.
        assert_eq!(s.on_retire(Labeled::secret(350.0)), ScheduleEvent::Assess);
        assert_eq!(s.on_retire(Labeled::secret(380.0)), ScheduleEvent::Idle);
        assert_eq!(s.on_retire(Labeled::secret(400.0)), ScheduleEvent::Assess);
    }

    #[test]
    fn time_schedule_declassifies_secret_clock() {
        let mut s = TimeSchedule::new(100.0);
        let (_, log) = audit::capture(|| {
            let _ = s.on_retire(Labeled::secret(50.0));
            let _ = s.on_retire(Labeled::secret(100.0));
        });
        assert_eq!(log.declassified.len(), 1);
        assert_eq!(log.declassified[0].site, sites::TIME_SCHEDULE_WALL_CLOCK);
        assert_eq!(log.declassified[0].hits, 2);
    }

    #[test]
    fn progress_schedule_counts_only_public_progress() {
        let mut s = ProgressSchedule::new(3);
        let p = Labeled::public;
        assert_eq!(s.on_retire(p(true)), ScheduleEvent::Idle);
        assert_eq!(s.on_retire(p(false)), ScheduleEvent::Idle); // secret_ctrl
        assert_eq!(s.on_retire(p(true)), ScheduleEvent::Idle);
        assert_eq!(s.on_retire(p(false)), ScheduleEvent::Idle);
        assert_eq!(s.on_retire(p(true)), ScheduleEvent::Assess);
        // Counter restarts.
        assert_eq!(s.progress(), 0);
        assert_eq!(s.on_retire(p(true)), ScheduleEvent::Idle);
    }

    #[test]
    fn progress_schedule_rejects_secret_counts_fail_closed() {
        let mut s = ProgressSchedule::new(2);
        let (_, log) = audit::capture(|| {
            // A secret-labeled count is dropped: no progress, a recorded
            // violation, never a declassification.
            assert_eq!(s.on_retire(Labeled::secret(true)), ScheduleEvent::Idle);
            assert_eq!(s.progress(), 0);
            assert_eq!(s.on_retire(Labeled::public(true)), ScheduleEvent::Idle);
            assert_eq!(s.on_retire(Labeled::public(true)), ScheduleEvent::Assess);
        });
        assert!(log.declassified.is_empty());
        assert_eq!(log.violations.len(), 1);
        assert_eq!(log.violations[0].site, sites::PROGRESS_SCHEDULE_INPUT);
    }

    #[test]
    fn progress_schedule_is_timing_oblivious() {
        // The same instruction stream produces the same assessment
        // points regardless of any notion of time.
        let stream = [true, true, false, true, true, true, false, true];
        let fire = |s: &mut ProgressSchedule| {
            stream
                .iter()
                .map(|&c| s.on_retire(Labeled::public(c)) == ScheduleEvent::Assess)
                .collect::<Vec<_>>()
        };
        let mut a = ProgressSchedule::new(2);
        let mut b = ProgressSchedule::new(2);
        assert_eq!(fire(&mut a), fire(&mut b));
    }

    #[test]
    fn batched_progress_matches_per_retirement_counting() {
        // 7 counted instructions against an interval of 3, delivered
        // one by one vs as batches: same total progress, and the batch
        // path fires at the same cumulative counts.
        let mut single = ProgressSchedule::new(3);
        let fires: usize = (0..7)
            .filter(|_| single.on_retire(Labeled::public(true)) == ScheduleEvent::Assess)
            .count();
        let mut batched = ProgressSchedule::new(3);
        let mut batch_fires = 0;
        for batch in [2u64, 3, 2] {
            if batched.on_progress(Labeled::public(batch)) == ScheduleEvent::Assess {
                batch_fires += 1;
            }
        }
        assert_eq!(fires, 2);
        assert_eq!(batch_fires, 2);
        assert_eq!(single.progress(), batched.progress());
    }

    #[test]
    fn batched_progress_collapses_spanned_intervals() {
        let mut s = ProgressSchedule::new(4);
        // 10 instructions span two intervals: one assessment, 2 left.
        assert_eq!(s.on_progress(Labeled::public(10)), ScheduleEvent::Assess);
        assert_eq!(s.progress(), 2);
        assert_eq!(s.on_progress(Labeled::public(1)), ScheduleEvent::Idle);
        assert_eq!(s.on_progress(Labeled::public(1)), ScheduleEvent::Assess);
    }

    #[test]
    fn batched_progress_rejects_secret_counts_fail_closed() {
        let mut s = ProgressSchedule::new(2);
        let (_, log) = audit::capture(|| {
            assert_eq!(s.on_progress(Labeled::secret(5)), ScheduleEvent::Idle);
            assert_eq!(s.progress(), 0);
        });
        assert!(log.declassified.is_empty());
        assert_eq!(log.violations.len(), 1);
        assert_eq!(log.violations[0].site, sites::PROGRESS_SCHEDULE_INPUT);
    }

    #[test]
    fn cooldown_guarantee() {
        let s = ProgressSchedule::new(8_000_000);
        // Paper configuration: 8 M instructions, 8-wide ⇒ 1 M cycles
        // (= 0.5 ms at 2 GHz; the paper pairs 8 M with T_c = 1 ms by
        // counting macro-ops — the structural bound is what matters).
        assert!((s.guaranteed_cooldown_cycles(8) - 1_000_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn time_rejects_zero() {
        let _ = TimeSchedule::new(0.0);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn progress_rejects_zero() {
        let _ = ProgressSchedule::new(0);
    }
}
