//! The Untangle framework: low-leakage, high-performance dynamic
//! partitioning schemes.
//!
//! This crate implements the paper's primary contribution on top of the
//! substrates (`untangle-info`, `untangle-sim`, `untangle-trace`):
//!
//! * [`action`] — resizing actions, their attacker-visible
//!   classification (Expand/Shrink/Maintain), and resizing traces.
//! * [`metric`] — utilization metrics (Table 2): the timing-independent,
//!   annotation-aware hit-curve metric Untangle requires (Principle 1,
//!   §5.2), the conventional metric the Time scheme uses, and a
//!   footprint metric.
//! * [`schedule`] — resizing schedules: the conventional time-based
//!   schedule and Untangle's progress-based schedule (Principle 2) with
//!   a structural cooldown guarantee (Mechanism 1, §5.3.2).
//! * [`heuristic`] — the action heuristic: per-assessment partition-size
//!   selection from the hit curve under a capacity budget, with the
//!   slack rule that produces Maintain-heavy behaviour.
//! * [`leakage`] — runtime leakage accounting: `log2 |A|` per assessment
//!   for conventional schemes (§3.3) and the `R_max(m)` rate-table
//!   charging of §5.3.4/§7 for Untangle, plus leakage budgets that
//!   freeze resizing when exhausted (§4, §6.2).
//! * [`scheme`] — the evaluated schemes: the four of Table 4 (Static,
//!   Time, Untangle, Shared) plus a SecDCP-style tiered baseline
//!   (§10), assembled from the components above.
//! * [`enumerate`] — the §3.2 ground-truth leakage measurement:
//!   enumerate inputs, run the scheme, take the entropy of the
//!   realized traces.
//! * [`runner`] — the multi-domain evaluation driver: interleaves
//!   domains in global-time order, applies delayed resizes (Mechanism
//!   2), samples partition sizes, and produces per-domain reports.
//! * [`prior`] — the prior-scheme component taxonomy of Table 1, as
//!   documentation-grade data.
//! * [`error`] — the workspace error type [`UntangleError`], into which
//!   every layer above `untangle-info` funnels its failures.
//! * [`taint`] — the secret-taint type layer: the `Public ⊑ Secret`
//!   label lattice, [`Labeled`] values with taint-propagating
//!   arithmetic, and the audited [`Labeled::declassify`] escape hatch
//!   that makes every secret-to-decision-path flow a named, countable
//!   site (the static counterpart of the §5.1 action-leakage
//!   definition).
//!
//! # Example
//!
//! Run one domain under Untangle and inspect its resizing trace:
//!
//! ```
//! use untangle_core::runner::{Runner, RunnerConfig};
//! use untangle_core::scheme::SchemeKind;
//! use untangle_trace::synth::{WorkingSetModel, WorkingSetConfig};
//!
//! let config = RunnerConfig::test_scale(SchemeKind::Untangle, 1);
//! let src = WorkingSetModel::new(WorkingSetConfig::default(), 7);
//! let report = Runner::new(config, vec![Box::new(src)]).expect("valid config").run();
//! let domain = &report.domains[0];
//! assert!(domain.stats.instructions > 0);
//! assert!(domain.leakage.total_bits >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod decision;
pub mod enumerate;
pub mod error;
pub mod heuristic;
pub mod leakage;
pub mod metric;
pub mod prior;
pub mod runner;
pub mod schedule;
pub mod scheme;
pub mod taint;

pub use action::{Action, ActionClass, ResizingTrace, TraceEntry};
pub use decision::{CommittedDecision, DecisionCore};
pub use error::UntangleError;
pub use leakage::{AccountingMode, LeakageAccountant, LeakageReport};
pub use metric::MetricPolicy;
pub use runner::{DomainReport, RunReport, Runner, RunnerConfig, TelemetrySample};
pub use scheme::SchemeKind;
pub use taint::{Label, Labeled};
/// The observability layer the framework reports into (re-exported so
/// downstream drivers need no separate `untangle-obs` dependency).
pub use untangle_obs as obs;
