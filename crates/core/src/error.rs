//! The workspace-wide error type.
//!
//! `untangle-info` keeps its own [`InfoError`] (it is a leaf crate), but
//! everything above it — scheme assembly, the experiment engine, the
//! checkpoint store — funnels failures into [`UntangleError`] so a sweep
//! driver can aggregate heterogeneous faults into one report instead of
//! aborting on the first panic. The information-theoretic variants mirror
//! `InfoError` one-to-one (and convert via `From`), so matching on
//! `UntangleError::InvalidDistribution` works no matter how deep the
//! failure originated.

use std::fmt;

use untangle_info::InfoError;

/// Any failure the Untangle framework can surface on a fallible path.
///
/// Hand-rolled (no external error crates): the workspace's dependency
/// budget is the standard library only.
#[derive(Debug, Clone, PartialEq)]
pub enum UntangleError {
    /// Probabilities were negative, non-finite, or did not sum to one
    /// (within tolerance). Carries the offending value or sum.
    InvalidDistribution(f64),
    /// An alphabet, trace ensemble, or joint table was empty.
    EmptyAlphabet,
    /// Two related structures disagreed in length.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A duration violated the channel constraints.
    InvalidDuration(u64),
    /// The optimizer failed to converge within the iteration budget.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual value of the Dinkelbach helper `F(q)` at exit.
        residual: f64,
    },
    /// A solver tunable was non-finite, non-positive, or a zero budget.
    InvalidOptions {
        /// Name of the offending option field.
        what: &'static str,
        /// The rejected value (integer budgets are reported as `0.0`).
        value: f64,
    },
    /// A runner or scheme configuration was rejected before any work ran
    /// (e.g. an out-of-range evaluation scale, partitions oversubscribing
    /// the LLC).
    InvalidConfig(String),
    /// A work item panicked in the worker pool and exhausted its retry
    /// budget (see `untangle-bench`'s panic isolation).
    WorkerPanic {
        /// Index of the work item in the fan-out.
        item: usize,
        /// Execution attempts made (initial run plus retries).
        attempts: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A checkpoint file could not be written, read, or parsed.
    Checkpoint {
        /// Path of the checkpoint involved.
        path: String,
        /// What went wrong.
        reason: String,
    },
    /// An I/O failure outside the checkpoint store. `std::io::Error` is
    /// neither `Clone` nor `PartialEq`, so only its rendering is kept.
    Io(String),
    /// Secret-labeled data reached a public-only interface and was
    /// rejected fail-closed (see [`crate::taint`]).
    TaintViolation {
        /// The [`crate::taint::sites`] constant naming the guarded
        /// boundary.
        site: &'static str,
    },
}

impl From<InfoError> for UntangleError {
    fn from(e: InfoError) -> Self {
        match e {
            InfoError::InvalidDistribution(sum) => UntangleError::InvalidDistribution(sum),
            InfoError::EmptyAlphabet => UntangleError::EmptyAlphabet,
            InfoError::LengthMismatch { expected, actual } => {
                UntangleError::LengthMismatch { expected, actual }
            }
            InfoError::InvalidDuration(d) => UntangleError::InvalidDuration(d),
            InfoError::NoConvergence {
                iterations,
                residual,
            } => UntangleError::NoConvergence {
                iterations,
                residual,
            },
            InfoError::InvalidOptions { what, value } => {
                UntangleError::InvalidOptions { what, value }
            }
        }
    }
}

impl From<std::io::Error> for UntangleError {
    fn from(e: std::io::Error) -> Self {
        UntangleError::Io(e.to_string())
    }
}

impl fmt::Display for UntangleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UntangleError::InvalidDistribution(sum) => {
                write!(f, "probabilities do not form a distribution (sum = {sum})")
            }
            UntangleError::EmptyAlphabet => write!(f, "alphabet or ensemble is empty"),
            UntangleError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            UntangleError::InvalidDuration(d) => write!(f, "invalid duration: {d}"),
            UntangleError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "optimizer did not converge after {iterations} iterations (residual {residual})"
            ),
            UntangleError::InvalidOptions { what, value } => {
                write!(f, "invalid solver option {what} = {value}")
            }
            UntangleError::InvalidConfig(reason) => write!(f, "invalid configuration: {reason}"),
            UntangleError::WorkerPanic {
                item,
                attempts,
                message,
            } => write!(
                f,
                "work item {item} panicked after {attempts} attempt(s): {message}"
            ),
            UntangleError::Checkpoint { path, reason } => {
                write!(f, "checkpoint {path}: {reason}")
            }
            UntangleError::Io(e) => write!(f, "i/o error: {e}"),
            UntangleError::TaintViolation { site } => {
                write!(f, "secret-labeled data rejected at public-only site {site}")
            }
        }
    }
}

impl std::error::Error for UntangleError {}

/// Convenience alias for workspace-level results.
pub type Result<T> = std::result::Result<T, UntangleError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_errors_flatten_one_to_one() {
        assert_eq!(
            UntangleError::from(InfoError::InvalidDistribution(1.5)),
            UntangleError::InvalidDistribution(1.5)
        );
        assert_eq!(
            UntangleError::from(InfoError::EmptyAlphabet),
            UntangleError::EmptyAlphabet
        );
        assert_eq!(
            UntangleError::from(InfoError::InvalidDuration(0)),
            UntangleError::InvalidDuration(0)
        );
        let e = UntangleError::from(InfoError::NoConvergence {
            iterations: 3,
            residual: 0.25,
        });
        assert_eq!(
            e,
            UntangleError::NoConvergence {
                iterations: 3,
                residual: 0.25
            }
        );
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = UntangleError::from(io);
        assert!(matches!(e, UntangleError::Io(ref s) if s.contains("gone")));
    }

    #[test]
    fn taint_violation_names_the_site() {
        let e = UntangleError::TaintViolation {
            site: "schedule::progress::counted_retirement",
        };
        assert!(e.to_string().contains("schedule::progress"));
    }

    #[test]
    fn display_is_informative() {
        let e = UntangleError::WorkerPanic {
            item: 7,
            attempts: 3,
            message: "boom".into(),
        };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains('3') && s.contains("boom"));
        let c = UntangleError::Checkpoint {
            path: "results/checkpoints/mix01.json".into(),
            reason: "truncated".into(),
        };
        assert!(c.to_string().contains("mix01.json"));
    }
}
