//! The secret-taint type layer: a two-point information-flow lattice
//! with an explicit, auditable declassification escape hatch.
//!
//! Untangle's central design principle (§5.1) is that a scheme's
//! resizing actions must be *timing-independent functions of public
//! progress* — action leakage `H(S) = 0` is a non-interference
//! property. This module makes secret-dependence explicit in the types
//! so that property is visible in the code, not just in simulations:
//!
//! * [`Label`] — the lattice `Public ⊑ Secret` with [`Label::join`].
//! * [`Labeled<T>`] — a value tagged with its label. Combining two
//!   labeled values joins their labels (taint propagation), so a
//!   computation that ever touched secret-dependent data stays
//!   `Secret`.
//! * [`Labeled::declassify`] — the *only* way secret data crosses into
//!   a decision path. Every call names a [`sites`] constant, making the
//!   leak surface greppable, and while an [`audit::capture`] is active
//!   each crossing is recorded. The non-interference certifier
//!   (`untangle-analysis`) runs schemes under capture and turns the
//!   recorded sites into the `LeakSites[...]` of its certificate.
//! * [`Labeled::require_public`] — the fail-closed guard: interfaces
//!   that must never see secret data (Untangle's progress schedule)
//!   reject `Secret` inputs with [`UntangleError::TaintViolation`] and
//!   the violation is recorded for the audit.
//!
//! The conventional Time scheme's wall-clock schedule and all-seeing
//! metric are forced through [`Labeled::declassify`]
//! ([`sites::TIME_SCHEDULE_WALL_CLOCK`], [`sites::CONVENTIONAL_METRIC`]),
//! so the edges ①–③ of the paper's Figure 2 appear as named,
//! countable declassification sites instead of silent data flow.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::ops::{Add, Div, Mul, Sub};

use crate::error::UntangleError;

/// The two-point information-flow lattice: `Public ⊑ Secret`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Label {
    /// Derivable from public inputs and public progress alone.
    Public,
    /// Influenced by a secret — directly, through control flow, or
    /// through secret-dependent timing.
    Secret,
}

impl Label {
    /// Least upper bound: `Secret` absorbs everything.
    pub const fn join(self, other: Label) -> Label {
        match (self, other) {
            (Label::Public, Label::Public) => Label::Public,
            _ => Label::Secret,
        }
    }

    /// Whether data at this label may flow to a `Public` sink without
    /// declassification.
    pub const fn flows_to_public(self) -> bool {
        matches!(self, Label::Public)
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Label::Public => "public",
            Label::Secret => "secret",
        })
    }
}

/// The named declassification and violation sites of the workspace.
///
/// Keeping every site a `const` in one module makes the full leak
/// surface reviewable at a glance and gives the certifier stable
/// machine-readable names for its `LeakSites[...]` output.
pub mod sites {
    /// The conventional wall-clock schedule reads the domain's cycle
    /// clock, which reflects secret-dependent execution timing
    /// (Fig. 2, Edge ③).
    pub const TIME_SCHEDULE_WALL_CLOCK: &str = "schedule::time::wall_clock";
    /// A hit-curve metric under [`crate::metric::MetricPolicy::All`]
    /// observes secret-annotated accesses, so its curve carries
    /// secret-dependent demand (Fig. 2, Edge ①).
    pub const CONVENTIONAL_METRIC: &str = "metric::all_accesses_hit_curve";
    /// The footprint analogue of [`CONVENTIONAL_METRIC`].
    pub const CONVENTIONAL_FOOTPRINT: &str = "metric::all_accesses_footprint";
    /// An Untangle run whose [`crate::runner::RunnerConfig::metric_policy`]
    /// override installs the all-seeing metric (the Fig. 2 Edge ①
    /// ablation): the override itself is the declassification.
    pub const METRIC_POLICY_OVERRIDE: &str = "runner::metric_policy_override";
    /// Fail-closed rejection: a secret-labeled progress count reached
    /// Untangle's progress schedule and was dropped (recorded as a
    /// violation, never as a declassification).
    pub const PROGRESS_SCHEDULE_INPUT: &str = "schedule::progress::counted_retirement";
    /// Fail-closed rejection in the serve daemon: a telemetry payload
    /// arrived for a tenant whose leakage budget is exhausted. The
    /// payload is tainted and barred from the decision path, forcing a
    /// Maintain (recorded as a violation — a *blocked* flow — never as
    /// a declassification).
    pub const TENANT_BUDGET_EXHAUSTED: &str = "serve::tenant_budget_exhausted";
    /// Fail-closed rejection in the serve daemon: a telemetry event
    /// self-declared as secret-influenced (`"tainted": true`) reached
    /// the decision path and was dropped.
    pub const SERVE_TELEMETRY_INPUT: &str = "serve::telemetry_input";
    /// Serialization boundary of the batch Runner's telemetry tap: a
    /// labeled metric value leaves the process as a telemetry event
    /// whose `tainted` flag re-establishes the label at serve ingest.
    /// The label round-trips, but the crossing is still named and
    /// audited rather than silent.
    pub const TELEMETRY_TAP_EXPORT: &str = "runner::telemetry_tap_export";

    /// Every named site, for enumeration and [`resolve`].
    pub const ALL: [&str; 8] = [
        TIME_SCHEDULE_WALL_CLOCK,
        CONVENTIONAL_METRIC,
        CONVENTIONAL_FOOTPRINT,
        METRIC_POLICY_OVERRIDE,
        PROGRESS_SCHEDULE_INPUT,
        TENANT_BUDGET_EXHAUSTED,
        SERVE_TELEMETRY_INPUT,
        TELEMETRY_TAP_EXPORT,
    ];

    /// Maps a serialized site name back to its `'static` constant —
    /// audit logs store `&'static str` sites, so a snapshot restore
    /// must round-trip through the registry rather than leak a new
    /// allocation. `None` for unknown names (a snapshot from a future
    /// or foreign build).
    pub fn resolve(name: &str) -> Option<&'static str> {
        ALL.into_iter().find(|&s| s == name)
    }
}

/// A value of type `T` tagged with an information-flow [`Label`].
///
/// `Labeled` deliberately has no method returning `&T` or `T` other
/// than [`Labeled::declassify`], [`Labeled::require_public`], and
/// [`Labeled::public_value`]: the unlabeled value can only be obtained
/// through a named escape hatch or a public-only guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Labeled<T> {
    value: T,
    label: Label,
}

impl<T> Labeled<T> {
    /// Tags `value` with `label`.
    pub const fn new(value: T, label: Label) -> Self {
        Self { value, label }
    }

    /// Tags a value as derivable from public data alone.
    pub const fn public(value: T) -> Self {
        Self::new(value, Label::Public)
    }

    /// Tags a value as secret-influenced.
    pub const fn secret(value: T) -> Self {
        Self::new(value, Label::Secret)
    }

    /// The value's label.
    pub const fn label(&self) -> Label {
        self.label
    }

    /// Applies `f` to the value, preserving the label (a pure function
    /// of tainted data stays tainted; of public data stays public).
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Labeled<U> {
        Labeled::new(f(self.value), self.label)
    }

    /// Combines two labeled values; the result carries the join of the
    /// labels — the taint-propagation rule.
    pub fn combine<U, V>(self, other: Labeled<U>, f: impl FnOnce(T, U) -> V) -> Labeled<V> {
        Labeled::new(f(self.value, other.value), self.label.join(other.label))
    }

    /// Raises the label to `Secret` (always allowed; the lattice only
    /// restricts flows *downward*).
    pub fn taint(self) -> Self {
        Self::new(self.value, Label::Secret)
    }

    /// Declassifies the value at a named [`sites`] constant — the
    /// explicit escape hatch through which secret data may enter a
    /// decision path.
    ///
    /// Declassifying an already-`Public` value is the identity and
    /// records nothing: the lattice only audits real `Secret → Public`
    /// crossings. While an [`audit::capture`] is active, each crossing
    /// increments the site's counter in the captured log.
    pub fn declassify(self, site: &'static str) -> T {
        if self.label == Label::Secret {
            audit::record_declassify(site);
        }
        self.value
    }

    /// The fail-closed guard for public-only interfaces.
    ///
    /// # Errors
    ///
    /// Returns [`UntangleError::TaintViolation`] — and records a
    /// violation at `site` for the audit — if the value is `Secret`.
    pub fn require_public(self, site: &'static str) -> Result<T, UntangleError> {
        match self.label {
            Label::Public => Ok(self.value),
            Label::Secret => {
                audit::record_violation(site);
                Err(UntangleError::TaintViolation { site })
            }
        }
    }

    /// The value, if public; `None` for secret data (no audit entry —
    /// use [`Labeled::require_public`] at enforcement boundaries).
    pub fn public_value(self) -> Option<T> {
        match self.label {
            Label::Public => Some(self.value),
            Label::Secret => None,
        }
    }
}

macro_rules! labeled_binop {
    ($trait:ident, $method:ident) => {
        impl<T: $trait<Output = T>> $trait for Labeled<T> {
            type Output = Labeled<T>;
            fn $method(self, rhs: Labeled<T>) -> Labeled<T> {
                self.combine(rhs, T::$method)
            }
        }

        impl<T: $trait<Output = T>> $trait<T> for Labeled<T> {
            type Output = Labeled<T>;
            /// A bare right-hand side is treated as `Public` (constants
            /// and configuration are public data).
            fn $method(self, rhs: T) -> Labeled<T> {
                self.combine(Labeled::public(rhs), T::$method)
            }
        }
    };
}

labeled_binop!(Add, add);
labeled_binop!(Sub, sub);
labeled_binop!(Mul, mul);
labeled_binop!(Div, div);

/// Scoped recording of declassifications and taint violations.
///
/// Recording is thread-local and off by default, so the per-retirement
/// hot paths (`TimeSchedule::on_retire` declassifies once per retired
/// instruction) pay only a thread-local flag check outside
/// certification runs.
pub mod audit {
    use super::*;

    #[derive(Default)]
    struct Capture {
        declassified: BTreeMap<&'static str, u64>,
        violations: BTreeMap<&'static str, u64>,
    }

    thread_local! {
        static CAPTURE: RefCell<Option<Capture>> = const { RefCell::new(None) };
    }

    /// One audited site with its hit count, in deterministic site-name
    /// order.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SiteCount {
        /// The [`super::sites`] constant that was crossed.
        pub site: &'static str,
        /// Number of crossings during the capture.
        pub hits: u64,
    }

    /// Everything recorded during one [`capture`].
    #[derive(Debug, Clone, Default, PartialEq, Eq)]
    pub struct AuditLog {
        /// `Secret → Public` declassifications, per site.
        pub declassified: Vec<SiteCount>,
        /// Fail-closed rejections of secret data, per site.
        pub violations: Vec<SiteCount>,
    }

    impl AuditLog {
        /// Whether no secret data crossed or touched a guarded
        /// boundary — the audit half of an `ActionLeakFree` verdict.
        pub fn is_clean(&self) -> bool {
            self.declassified.is_empty() && self.violations.is_empty()
        }
    }

    /// Runs `f` with audit recording enabled on this thread and returns
    /// its result together with the recorded log. Nested captures are
    /// independent: the inner capture's events are invisible to the
    /// outer one.
    pub fn capture<R>(f: impl FnOnce() -> R) -> (R, AuditLog) {
        let previous = CAPTURE.with(|c| c.replace(Some(Capture::default())));
        let result = f();
        let captured = CAPTURE.with(|c| c.replace(previous));
        let log = captured.map(to_log).unwrap_or_default();
        (result, log)
    }

    /// Whether a capture is active on this thread.
    pub fn is_capturing() -> bool {
        CAPTURE.with(|c| c.borrow().is_some())
    }

    fn to_log(capture: Capture) -> AuditLog {
        let counts = |m: BTreeMap<&'static str, u64>| {
            m.into_iter()
                .map(|(site, hits)| SiteCount { site, hits })
                .collect()
        };
        AuditLog {
            declassified: counts(capture.declassified),
            violations: counts(capture.violations),
        }
    }

    pub(super) fn record_declassify(site: &'static str) {
        CAPTURE.with(|c| {
            if let Some(capture) = c.borrow_mut().as_mut() {
                *capture.declassified.entry(site).or_insert(0) += 1;
            }
        });
    }

    pub(super) fn record_violation(site: &'static str) {
        CAPTURE.with(|c| {
            if let Some(capture) = c.borrow_mut().as_mut() {
                *capture.violations.entry(site).or_insert(0) += 1;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_a_lattice() {
        assert_eq!(Label::Public.join(Label::Public), Label::Public);
        assert_eq!(Label::Public.join(Label::Secret), Label::Secret);
        assert_eq!(Label::Secret.join(Label::Public), Label::Secret);
        assert_eq!(Label::Secret.join(Label::Secret), Label::Secret);
        assert!(Label::Public.flows_to_public());
        assert!(!Label::Secret.flows_to_public());
    }

    #[test]
    fn arithmetic_propagates_taint() {
        let a = Labeled::public(2.0_f64);
        let b = Labeled::secret(3.0_f64);
        let sum = a + b;
        assert_eq!(sum.label(), Label::Secret);
        assert_eq!(sum.declassify("test::sum"), 5.0);

        let pure = Labeled::public(2.0_f64) * Labeled::public(4.0_f64);
        assert_eq!(pure.label(), Label::Public);
        assert_eq!(pure.public_value(), Some(8.0));

        let scaled = Labeled::secret(10.0_f64) / 2.0;
        assert_eq!(scaled.label(), Label::Secret);

        let diff = Labeled::public(7_i64) - Labeled::public(5_i64);
        assert_eq!(diff.public_value(), Some(2));
    }

    #[test]
    fn map_preserves_and_combine_joins() {
        let v = Labeled::secret(3_u64).map(|x| x * 2);
        assert_eq!(v.label(), Label::Secret);
        let joined = Labeled::public(1_u64).combine(v, |a, b| a + b);
        assert_eq!(joined.label(), Label::Secret);
        let tainted = Labeled::public(1_u64).taint();
        assert_eq!(tainted.label(), Label::Secret);
    }

    #[test]
    fn require_public_guards_secret_data() {
        assert_eq!(Labeled::public(5).require_public("test::guard"), Ok(5));
        let err = Labeled::secret(5).require_public("test::guard");
        assert_eq!(
            err,
            Err(UntangleError::TaintViolation {
                site: "test::guard"
            })
        );
        assert_eq!(Labeled::secret(5).public_value(), None);
    }

    #[test]
    fn capture_records_crossings_and_violations() {
        let ((), log) = audit::capture(|| {
            let _ = Labeled::secret(1.0).declassify("test::a");
            let _ = Labeled::secret(2.0).declassify("test::a");
            let _ = Labeled::public(3.0).declassify("test::a"); // no-op
            let _ = Labeled::secret(4).require_public("test::b");
        });
        assert_eq!(log.declassified.len(), 1);
        assert_eq!(log.declassified[0].site, "test::a");
        assert_eq!(log.declassified[0].hits, 2);
        assert_eq!(log.violations.len(), 1);
        assert_eq!(log.violations[0].site, "test::b");
        assert!(!log.is_clean());
    }

    #[test]
    fn recording_is_off_outside_capture() {
        assert!(!audit::is_capturing());
        let _ = Labeled::secret(1.0).declassify("test::outside");
        let ((), log) = audit::capture(|| {
            assert!(audit::is_capturing());
        });
        assert!(log.is_clean(), "pre-capture events must not appear");
        assert!(!audit::is_capturing());
    }

    #[test]
    fn nested_captures_are_independent() {
        let ((), outer) = audit::capture(|| {
            let _ = Labeled::secret(1).declassify("test::outer");
            let ((), inner) = audit::capture(|| {
                let _ = Labeled::secret(2).declassify("test::inner");
            });
            assert_eq!(inner.declassified.len(), 1);
            assert_eq!(inner.declassified[0].site, "test::inner");
        });
        assert_eq!(outer.declassified.len(), 1);
        assert_eq!(outer.declassified[0].site, "test::outer");
    }

    #[test]
    fn labels_display() {
        assert_eq!(Label::Public.to_string(), "public");
        assert_eq!(Label::Secret.to_string(), "secret");
    }
}
