//! The reusable per-domain decision step: everything one security
//! domain's resizing pipeline owns *after* an action has been chosen
//! and *around* choosing one.
//!
//! Historically this state machine lived inline in [`crate::runner`]'s
//! `DomainState`. The serve daemon needs the identical semantics —
//! budget gating, Maintain-optimized accounting, the random action
//! delay δ drawn per visible action, the logical-vs-physical size
//! split, trace recording — for domains that are admitted and retired
//! at runtime, so the step machinery is factored into [`DecisionCore`]
//! and both drivers run the same code path. Bit-identical behaviour is
//! load-bearing: the serve acceptance criterion replays a telemetry
//! stream through the batch `Runner` and through a 1-shard service and
//! compares decision traces byte for byte.
//!
//! A `DecisionCore` deliberately does **not** choose actions (that is
//! the caller's heuristic, which may consult global state such as every
//! domain's hit curve) and does not apply them to a cache model (the
//! caller owns the `System` or serve-side bookkeeping). Its contract:
//!
//! 1. [`DecisionCore::gate`] — ask the leakage accountant whether an
//!    assessment may proceed, must degrade to Maintain, or is skipped.
//! 2. [`DecisionCore::commit`] — classify the chosen action against the
//!    *logical* size, charge the accountant, draw the delay for visible
//!    actions, record the trace entry, and schedule the pending switch.
//! 3. [`DecisionCore::take_due`] — on later steps, collect a pending
//!    resize whose delay has elapsed so the caller can apply it
//!    physically.

use crate::action::{Action, ActionClass, ResizingTrace, TraceEntry};
use crate::leakage::{BudgetGate, LeakageAccountant, LeakageReport};
use untangle_sim::config::PartitionSize;
use untangle_trace::synth::TraceRng;

/// What [`DecisionCore::commit`] recorded for one assessment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommittedDecision {
    /// Expand / Maintain / Shrink relative to the pre-action logical
    /// size.
    pub class: ActionClass,
    /// The cycle at which the action becomes attacker-visible (decision
    /// cycle plus the random delay δ for visible actions; the decision
    /// cycle itself for Maintains).
    pub applied_at_cycles: f64,
}

/// Per-domain decision state: leakage accountant, resizing trace,
/// pending delayed action, logical partition size, and the delay RNG.
///
/// See the module docs for the step contract. One core is exclusively
/// owned by one domain's driver (the batch `Runner` or one serve
/// shard); nothing here is shared.
#[derive(Debug)]
pub struct DecisionCore {
    accountant: LeakageAccountant,
    trace: ResizingTrace,
    /// A decided visible action waiting out its random delay.
    pending: Option<(f64, PartitionSize)>,
    /// The size selected by the most recent decided action. Decisions
    /// and leakage classification use this *logical* size, never the
    /// physical one: a pending action's random delay δ must only move
    /// the attacker-observable switch, not re-entangle the next
    /// decision with program timing (Fig. 6).
    logical_size: PartitionSize,
    rng: TraceRng,
    delay_max_cycles: u64,
}

impl DecisionCore {
    /// Builds a core starting at `initial_size` with an empty trace.
    ///
    /// `rng` drives the random action delay: δ is uniform over
    /// `[0, delay_max_cycles)` for visible actions, zero when
    /// `delay_max_cycles == 0`.
    pub fn new(
        accountant: LeakageAccountant,
        initial_size: PartitionSize,
        rng: TraceRng,
        delay_max_cycles: u64,
    ) -> Self {
        Self {
            accountant,
            trace: ResizingTrace::new(),
            pending: None,
            logical_size: initial_size,
            rng,
            delay_max_cycles,
        }
    }

    /// Rebuilds a core mid-stream from captured state — the
    /// crash-recovery constructor. Every field that influences future
    /// behaviour travels explicitly: the accountant (restored via
    /// [`LeakageAccountant::from_state`]), the recorded trace, the
    /// pending delayed action, the logical size, and the delay RNG at
    /// its exact draw position ([`TraceRng::from_state`]). A core
    /// restored from a snapshot of itself commits byte-identical
    /// decisions for the identical subsequent inputs.
    pub fn from_parts(
        accountant: LeakageAccountant,
        trace: ResizingTrace,
        pending: Option<(f64, PartitionSize)>,
        logical_size: PartitionSize,
        rng: TraceRng,
        delay_max_cycles: u64,
    ) -> Self {
        Self {
            accountant,
            trace,
            pending,
            logical_size,
            rng,
            delay_max_cycles,
        }
    }

    /// The pending visible action (apply-at cycle and size), if any.
    pub fn pending(&self) -> Option<(f64, PartitionSize)> {
        self.pending
    }

    /// The delay RNG's raw state (see [`TraceRng::state`]).
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// The configured maximum random action delay in cycles.
    pub fn delay_max_cycles(&self) -> u64 {
        self.delay_max_cycles
    }

    /// The leakage accountant (read-only; for snapshotting its state).
    pub fn accountant(&self) -> &LeakageAccountant {
        &self.accountant
    }

    /// Charges `bits` against the budget outside any assessment — the
    /// fail-closed crash-recovery rule; see
    /// [`LeakageAccountant::charge_external`].
    pub fn charge_external(&mut self, bits: f64) {
        self.accountant.charge_external(bits);
    }

    /// The logical partition size: the size selected by the most recent
    /// decided action, whether or not it has been applied physically.
    pub fn logical_size(&self) -> PartitionSize {
        self.logical_size
    }

    /// The resizing trace recorded so far.
    pub fn trace(&self) -> &ResizingTrace {
        &self.trace
    }

    /// The accountant's running leakage report.
    pub fn report(&self) -> LeakageReport {
        self.accountant.report()
    }

    /// Whether the leakage budget froze further resizing.
    pub fn is_frozen(&self) -> bool {
        self.accountant.is_frozen()
    }

    /// Asks the leakage accountant whether an assessment at `now` may
    /// proceed, must degrade to a forced Maintain, or is skipped
    /// entirely (budget exhausted under worst-case accounting).
    pub fn gate(&self, now: f64) -> BudgetGate {
        self.accountant.gate(now)
    }

    /// Collects a pending resize whose delay has elapsed by `now`, if
    /// any, clearing it. The caller applies the returned size to the
    /// physical cache model.
    pub fn take_due(&mut self, now: f64) -> Option<PartitionSize> {
        match self.pending {
            Some((apply_at, size)) if now >= apply_at => {
                self.pending = None;
                Some(size)
            }
            _ => None,
        }
    }

    /// Records one decided assessment at cycle `now`.
    ///
    /// Classifies `action` against the logical size, charges the
    /// accountant, draws the random delay δ for visible actions (one
    /// RNG draw, taken only when the action is visible and a delay is
    /// configured — the draw order is part of the bit-identical
    /// contract), pushes the trace entry, and for visible actions
    /// advances the logical size and schedules the pending physical
    /// switch.
    pub fn commit(&mut self, action: Action, now: f64) -> CommittedDecision {
        let current = self.logical_size;
        let class = action.classify(current);
        self.accountant.on_assessment(class, now);

        let applied_at = if class.is_visible() {
            let delay = if self.delay_max_cycles > 0 {
                self.rng.below(self.delay_max_cycles) as f64
            } else {
                0.0
            };
            now + delay
        } else {
            now
        };
        self.trace.push(TraceEntry {
            action,
            class,
            decided_at_cycles: now,
            applied_at_cycles: applied_at,
        });

        if class.is_visible() {
            self.logical_size = action.size;
            self.pending = Some((applied_at, action.size));
        }
        CommittedDecision {
            class,
            applied_at_cycles: applied_at,
        }
    }

    /// Resets the measurement counters at the warmup boundary: the
    /// accountant's report (counters *and* accumulated charge — the
    /// leakage budget governs the measured phase, per the §8 protocol)
    /// and the trace restart, while the accountant's freeze flag and
    /// time anchors, pending action, logical size, and RNG stream
    /// carry over (the
    /// protocol measures post-warmup behaviour of a warmed-up pipeline,
    /// not a fresh one).
    pub fn reset_measurement(&mut self) {
        self.accountant.reset_counters();
        self.trace = ResizingTrace::new();
    }

    /// Consumes the core into its final trace and leakage report.
    pub fn into_results(self) -> (ResizingTrace, LeakageReport) {
        let report = self.accountant.report();
        (self.trace, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leakage::AccountingMode;

    fn core(budget: Option<f64>, delay_max: u64) -> DecisionCore {
        DecisionCore::new(
            LeakageAccountant::new(AccountingMode::PerAssessment { bits: 1.0 }, budget),
            PartitionSize::MB2,
            TraceRng::new(7),
            delay_max,
        )
    }

    #[test]
    fn maintain_applies_immediately_without_an_rng_draw() {
        let mut a = core(None, 1_000);
        let mut b = core(None, 1_000);
        let m = a.commit(Action::set_size(PartitionSize::MB2), 10.0);
        assert_eq!(m.class, ActionClass::Maintain);
        assert_eq!(m.applied_at_cycles, 10.0);
        assert_eq!(a.take_due(10.0), None, "maintains never pend");
        // The RNG stream was not advanced: a visible action decided next
        // draws the same delay as one decided first.
        let va = a.commit(Action::set_size(PartitionSize::MB4), 20.0);
        let vb = b.commit(Action::set_size(PartitionSize::MB4), 20.0);
        assert_eq!(va.applied_at_cycles, vb.applied_at_cycles);
    }

    #[test]
    fn visible_actions_advance_logical_size_and_pend() {
        let mut c = core(None, 100);
        let v = c.commit(Action::set_size(PartitionSize::MB4), 50.0);
        assert!(v.class.is_visible());
        assert!(v.applied_at_cycles >= 50.0 && v.applied_at_cycles < 150.0);
        // Logical size moves immediately; the physical switch waits.
        assert_eq!(c.logical_size(), PartitionSize::MB4);
        assert_eq!(c.take_due(v.applied_at_cycles - 1.0), None);
        assert_eq!(c.take_due(v.applied_at_cycles), Some(PartitionSize::MB4));
        assert_eq!(c.take_due(v.applied_at_cycles), None, "taken once");
    }

    #[test]
    fn zero_delay_applies_at_the_decision_cycle() {
        let mut c = core(None, 0);
        let v = c.commit(Action::set_size(PartitionSize::MB1), 5.0);
        assert_eq!(v.applied_at_cycles, 5.0);
    }

    #[test]
    fn budget_gate_and_freeze_are_exposed() {
        let mut c = core(Some(2.0), 0);
        assert_eq!(c.gate(0.0), BudgetGate::Proceed);
        let _ = c.commit(Action::set_size(PartitionSize::MB4), 1.0);
        let _ = c.commit(Action::set_size(PartitionSize::MB2), 2.0);
        // 2 bits charged against a 2-bit budget: the next gate refuses.
        assert_ne!(c.gate(3.0), BudgetGate::Proceed);
    }

    #[test]
    fn reset_measurement_clears_trace_and_charge() {
        let mut c = core(Some(2.0), 0);
        let _ = c.commit(Action::set_size(PartitionSize::MB4), 1.0);
        let _ = c.commit(Action::set_size(PartitionSize::MB2), 2.0);
        assert_ne!(c.gate(3.0), BudgetGate::Proceed, "budget spent");
        c.reset_measurement();
        assert!(c.trace().is_empty());
        assert_eq!(c.report().assessments, 0);
        assert_eq!(c.report().total_bits, 0.0);
        // A freeze is sticky across the reset: security-preserving
        // state never relaxes at a measurement boundary.
        assert_eq!(c.gate(3.0), BudgetGate::Skip);
        assert!(c.is_frozen());
        // Logical size carried over across the reset.
        assert_eq!(c.logical_size(), PartitionSize::MB2);
    }

    #[test]
    fn from_parts_continues_bit_identically() {
        // Drive a core through a mixed history, snapshot every piece of
        // its state, rebuild, and drive both onward: traces, reports,
        // pendings, and RNG draws must stay identical.
        let mut original = core(Some(10.0), 1_000);
        let script = [
            (PartitionSize::MB4, 10.0),
            (PartitionSize::MB4, 20.0),
            (PartitionSize::MB8, 30.0),
        ];
        for (size, now) in script {
            let _ = original.commit(Action::set_size(size), now);
        }
        let mut restored = DecisionCore::from_parts(
            LeakageAccountant::from_state(
                AccountingMode::PerAssessment { bits: 1.0 },
                Some(10.0),
                original.accountant().state(),
            ),
            original.trace().entries().iter().copied().collect(),
            original.pending(),
            original.logical_size(),
            untangle_trace::synth::TraceRng::from_state(original.rng_state()),
            original.delay_max_cycles(),
        );
        for (size, now) in [(PartitionSize::MB1, 40.0), (PartitionSize::MB2, 50.0)] {
            let a = original.commit(Action::set_size(size), now);
            let b = restored.commit(Action::set_size(size), now);
            assert_eq!(a, b);
        }
        assert_eq!(original.trace().entries(), restored.trace().entries());
        assert_eq!(original.report(), restored.report());
        assert_eq!(original.pending(), restored.pending());
        assert_eq!(original.rng_state(), restored.rng_state());
    }

    #[test]
    fn into_results_returns_trace_and_report() {
        let mut c = core(None, 0);
        let _ = c.commit(Action::set_size(PartitionSize::MB4), 1.0);
        let (trace, report) = c.into_results();
        assert_eq!(trace.len(), 1);
        assert_eq!(report.assessments, 1);
    }
}
