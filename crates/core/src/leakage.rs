//! Runtime leakage accounting (§3.3, §5.3.4, §7, Table 6).
//!
//! Two accounting models are implemented:
//!
//! * **Per-assessment log** — the conventional bound of §3.3: every
//!   assessment can pick any of `|A|` actions, so it is charged
//!   `log2 |A|` bits (3.17 bits for the paper's nine actions). This is
//!   what the Time scheme pays.
//! * **Rate-table** — Untangle's model. Action leakage is zero by
//!   construction (Principles 1–2 plus annotations eliminate it, §5.2),
//!   so only scheduling leakage is charged: each attacker-visible action
//!   pays `R_max(m) × Δt`, where `m` is the number of consecutive
//!   Maintains since the last visible action, `Δt` the elapsed time, and
//!   `R_max(m)` the precomputed certified channel rate of §5.3.4. The
//!   *worst-case* variant (`optimized = false`) charges every assessment
//!   at `R_max(0)` as if it were visible — the §9 active-attacker
//!   scenario.
//!
//! A [`LeakageAccountant`] optionally enforces a leakage budget: once
//! the accumulated bits reach the threshold, the accountant reports
//! itself frozen and the scheme must stop resizing (§4: performance may
//! suffer, security may not).

use crate::action::ActionClass;
use untangle_info::RateTable;

/// What the leakage budget permits at an assessment point (§4: when the
/// threshold is reached, the victim may not perform further resizings —
/// the guarantee is *never exceed*, so the gate runs before charging).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetGate {
    /// Budget headroom for any outcome: assess normally.
    Proceed,
    /// A visible action would bust the budget, but Maintains are free:
    /// the scheme must maintain.
    MaintainOnly,
    /// Even recording the assessment would bust the budget: skip it.
    Skip,
}

/// Which accounting model to charge under.
#[derive(Debug, Clone)]
pub enum AccountingMode {
    /// Charge a constant number of bits at every assessment
    /// (`log2 |A|` for the conventional scheme).
    PerAssessment {
        /// Bits charged per assessment.
        bits: f64,
    },
    /// Charge visible actions from a precomputed `R_max` table.
    ///
    /// Each visible action is one covert-channel transmission. Two sound
    /// bounds apply and the smaller is charged:
    ///
    /// 1. the sustained-rate bound `R_max(m) × Δt` (Appendix A);
    /// 2. the per-transmission bound: one transmission of observed
    ///    duration `Δt` over a channel with minimum duration
    ///    `(m+1)·T_c` and delay noise of width `w` distinguishes at most
    ///    `(Δt − (m+1)T_c + 2w)/w` durations, so it carries at most the
    ///    log of that count (Eq. A.10 applied to a single symbol).
    RateTable {
        /// Certified rates per consecutive-Maintain count.
        table: RateTable,
        /// Cycles per rate-table time unit (the attacker's measurement
        /// resolution).
        cycles_per_unit: f64,
        /// One cooldown period `T_c` in rate-table units.
        cooldown_units: f64,
        /// Width of the random action delay δ in rate-table units.
        delay_units: f64,
        /// `true` = §5.3.4 Maintain optimization; `false` = worst case
        /// (every assessment charged as visible at `R_max(0)`).
        optimized: bool,
    },
}

/// The smaller of the sustained-rate and per-transmission bounds for
/// one visible action, in bits.
fn transmission_bits(
    table: &RateTable,
    maintains: usize,
    dt_units: f64,
    cooldown_units: f64,
    delay_units: f64,
) -> f64 {
    let rate_bound = table.rate(maintains) * dt_units;
    let effective_cooldown = (maintains as f64 + 1.0) * cooldown_units;
    let span = (dt_units - effective_cooldown).max(0.0);
    let noise = delay_units.max(1.0);
    let per_tx_bound = ((span + 2.0 * noise) / noise).max(1.0).log2();
    rate_bound.min(per_tx_bound).max(0.0)
}

/// Summary of a domain's accumulated leakage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LeakageReport {
    /// Total bits charged.
    pub total_bits: f64,
    /// Assessments performed.
    pub assessments: u64,
    /// Attacker-visible actions among them.
    pub visible_actions: u64,
    /// Maintain decisions among them.
    pub maintains: u64,
}

impl LeakageReport {
    /// Average bits charged per assessment — the paper's headline metric
    /// (Fig. 10 middle rows, Table 6).
    pub fn bits_per_assessment(&self) -> f64 {
        if self.assessments == 0 {
            0.0
        } else {
            self.total_bits / self.assessments as f64
        }
    }

    /// Fraction of assessments that chose Maintain.
    pub fn maintain_fraction(&self) -> f64 {
        if self.assessments == 0 {
            0.0
        } else {
            self.maintains as f64 / self.assessments as f64
        }
    }
}

/// The accountant's complete mutable state, exposed for
/// snapshot/restore ([`LeakageAccountant::state`] /
/// [`LeakageAccountant::from_state`]). The accounting mode and budget
/// are configuration, not state, and travel separately: a restored
/// daemon re-derives them from the admit record, so a snapshot cannot
/// smuggle in a laxer budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccountantState {
    /// The accumulated report (total bits, assessment counters).
    pub report: LeakageReport,
    /// Consecutive Maintains since the last visible action.
    pub consecutive_maintains: usize,
    /// Cycle of the last visible action (rate anchor, optimized mode).
    pub last_visible_cycles: f64,
    /// Cycle of the last assessment (rate anchor, worst-case mode).
    pub last_assessment_cycles: f64,
    /// Whether the budget froze further resizing.
    pub frozen: bool,
}

/// Accumulates leakage charges for one domain and enforces the budget.
#[derive(Debug, Clone)]
pub struct LeakageAccountant {
    mode: AccountingMode,
    budget_bits: Option<f64>,
    report: LeakageReport,
    consecutive_maintains: usize,
    last_visible_cycles: f64,
    last_assessment_cycles: f64,
    frozen: bool,
}

impl LeakageAccountant {
    /// Creates an accountant starting at cycle 0 with no charges.
    pub fn new(mode: AccountingMode, budget_bits: Option<f64>) -> Self {
        Self::with_initial_charge(mode, budget_bits, 0.0)
    }

    /// Creates an accountant that has already spent `charged_bits` of
    /// its budget — the §6.2 replay-attack defence, where the operating
    /// system accumulates a victim program's leakage across runs and
    /// the budget survives restarts.
    pub fn with_initial_charge(
        mode: AccountingMode,
        budget_bits: Option<f64>,
        charged_bits: f64,
    ) -> Self {
        let mut acct = Self {
            mode,
            budget_bits,
            report: LeakageReport {
                total_bits: charged_bits,
                ..LeakageReport::default()
            },
            consecutive_maintains: 0,
            last_visible_cycles: 0.0,
            last_assessment_cycles: 0.0,
            frozen: false,
        };
        if let Some(budget) = budget_bits {
            if charged_bits >= budget {
                acct.frozen = true;
            }
        }
        acct
    }

    /// Captures the accountant's complete mutable state for a
    /// snapshot.
    pub fn state(&self) -> AccountantState {
        AccountantState {
            report: self.report,
            consecutive_maintains: self.consecutive_maintains,
            last_visible_cycles: self.last_visible_cycles,
            last_assessment_cycles: self.last_assessment_cycles,
            frozen: self.frozen,
        }
    }

    /// Rebuilds an accountant from configuration plus a captured
    /// [`AccountantState`] — bit-exact: the restored accountant charges
    /// and gates identically to the captured one. The freeze flag is
    /// re-derived from the restored total as well as the stored flag,
    /// so a snapshot can only ever make the accountant *more* frozen
    /// than its totals imply, never less.
    pub fn from_state(
        mode: AccountingMode,
        budget_bits: Option<f64>,
        state: AccountantState,
    ) -> Self {
        let mut acct = Self {
            mode,
            budget_bits,
            report: state.report,
            consecutive_maintains: state.consecutive_maintains,
            last_visible_cycles: state.last_visible_cycles,
            last_assessment_cycles: state.last_assessment_cycles,
            frozen: state.frozen,
        };
        acct.refresh_freeze();
        acct
    }

    /// The configured budget, if any.
    pub fn budget_bits(&self) -> Option<f64> {
        self.budget_bits
    }

    /// Charges `bits` outside any assessment — the crash-recovery
    /// *fail-closed* rule: when a torn journal tail makes it ambiguous
    /// whether an assessment was charged before the crash, the
    /// recovering daemon charges the worst case against the budget
    /// rather than risk under-counting spent leakage. Counters are
    /// untouched (no assessment happened that the replay can see); the
    /// budget re-evaluates, so the charge can freeze the domain and
    /// the next gate degrades it to Maintain through the taint layer.
    pub fn charge_external(&mut self, bits: f64) {
        self.report.total_bits += bits.max(0.0);
        self.refresh_freeze();
    }

    /// Re-evaluates the freeze flag against the current total (the
    /// same headroom rule [`LeakageAccountant::on_assessment`] applies
    /// after charging). Freezing is one-way: this never thaws.
    fn refresh_freeze(&mut self) {
        if let Some(budget) = self.budget_bits {
            let exhausted = match &self.mode {
                AccountingMode::PerAssessment { bits } => self.report.total_bits + bits > budget,
                _ => self.report.total_bits >= budget,
            };
            if exhausted {
                self.frozen = true;
            }
        }
    }

    /// Records an assessment outcome at `cycles_now`; returns the bits
    /// charged for it.
    pub fn on_assessment(&mut self, class: ActionClass, cycles_now: f64) -> f64 {
        self.report.assessments += 1;
        let bits = match &self.mode {
            AccountingMode::PerAssessment { bits } => *bits,
            AccountingMode::RateTable {
                table,
                cycles_per_unit,
                cooldown_units,
                delay_units,
                optimized,
            } => {
                if *optimized {
                    if class.is_visible() {
                        let dt_units = (cycles_now - self.last_visible_cycles) / cycles_per_unit;
                        transmission_bits(
                            table,
                            self.consecutive_maintains,
                            dt_units,
                            *cooldown_units,
                            *delay_units,
                        )
                    } else {
                        0.0
                    }
                } else {
                    // Worst case: every assessment is charged as a
                    // visible action with no Maintain credit.
                    let dt_units = (cycles_now - self.last_assessment_cycles) / cycles_per_unit;
                    transmission_bits(table, 0, dt_units, *cooldown_units, *delay_units)
                }
            }
        };
        match class {
            ActionClass::Maintain => {
                self.report.maintains += 1;
                self.consecutive_maintains += 1;
            }
            _ => {
                self.report.visible_actions += 1;
                self.consecutive_maintains = 0;
                self.last_visible_cycles = cycles_now;
            }
        }
        self.last_assessment_cycles = cycles_now;
        self.report.total_bits += bits;
        // Flat charges freeze as soon as another assessment cannot be
        // afforded; rate charges freeze at the budget itself.
        self.refresh_freeze();
        bits
    }

    /// Whether the leakage budget is exhausted. A frozen domain must not
    /// perform further resizes; its security is preserved at the cost of
    /// performance (§4, §6.2).
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// The bits a hypothetical *visible* action at `cycles_now` would be
    /// charged.
    pub fn visible_charge_bits(&self, cycles_now: f64) -> f64 {
        match &self.mode {
            AccountingMode::PerAssessment { bits } => *bits,
            AccountingMode::RateTable {
                table,
                cycles_per_unit,
                cooldown_units,
                delay_units,
                optimized,
            } => {
                let (anchor, maintains) = if *optimized {
                    (self.last_visible_cycles, self.consecutive_maintains)
                } else {
                    (self.last_assessment_cycles, 0)
                };
                let dt_units = (cycles_now - anchor) / cycles_per_unit;
                transmission_bits(table, maintains, dt_units, *cooldown_units, *delay_units)
            }
        }
    }

    /// Evaluates the budget *before* an assessment at `cycles_now`.
    pub fn gate(&self, cycles_now: f64) -> BudgetGate {
        let Some(budget) = self.budget_bits else {
            return BudgetGate::Proceed;
        };
        if self.frozen {
            return BudgetGate::Skip;
        }
        let visible_cost = self.visible_charge_bits(cycles_now);
        if self.report.total_bits + visible_cost <= budget {
            return BudgetGate::Proceed;
        }
        match &self.mode {
            // Maintains are free only under the optimized rate model.
            AccountingMode::RateTable {
                optimized: true, ..
            } => BudgetGate::MaintainOnly,
            _ => BudgetGate::Skip,
        }
    }

    /// The accumulated report.
    pub fn report(&self) -> LeakageReport {
        self.report
    }

    /// Consecutive Maintains since the last visible action.
    pub fn consecutive_maintains(&self) -> usize {
        self.consecutive_maintains
    }

    /// Forgets accumulated charges and counters (used at the end of the
    /// warmup phase) while keeping the time anchors.
    pub fn reset_counters(&mut self) {
        self.report = LeakageReport::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use untangle_info::rate_table::RateTableConfig;
    use untangle_info::{DelayDist, RateTable};

    fn table() -> RateTable {
        RateTable::precompute(&RateTableConfig {
            cooldown: 4,
            n_symbols: 4,
            step: 1,
            delay: DelayDist::uniform(4).unwrap(),
            max_maintains: 4,
        })
        .unwrap()
    }

    #[test]
    fn per_assessment_charges_flat_rate() {
        let bits = (9f64).log2();
        let mut a = LeakageAccountant::new(AccountingMode::PerAssessment { bits }, None);
        for i in 0..10 {
            let class = if i % 2 == 0 {
                ActionClass::Maintain
            } else {
                ActionClass::Expand
            };
            a.on_assessment(class, i as f64 * 100.0);
        }
        let r = a.report();
        assert_eq!(r.assessments, 10);
        assert!((r.total_bits - 10.0 * bits).abs() < 1e-9);
        assert!((r.bits_per_assessment() - bits).abs() < 1e-12);
    }

    #[test]
    fn maintains_are_free_under_optimized_accounting() {
        let mode = AccountingMode::RateTable {
            table: table(),
            cycles_per_unit: 100.0,
            cooldown_units: 4.0,
            delay_units: 4.0,
            optimized: true,
        };
        let mut a = LeakageAccountant::new(mode, None);
        let b1 = a.on_assessment(ActionClass::Maintain, 400.0);
        let b2 = a.on_assessment(ActionClass::Maintain, 800.0);
        // Optimized accounting charges Maintain a literal 0.0.
        assert_eq!(b1.to_bits(), 0.0f64.to_bits());
        assert_eq!(b2.to_bits(), 0.0f64.to_bits());
        assert_eq!(a.consecutive_maintains(), 2);
        let b3 = a.on_assessment(ActionClass::Expand, 1200.0);
        assert!(b3 > 0.0);
        assert_eq!(a.consecutive_maintains(), 0);
    }

    #[test]
    fn maintain_runs_lower_the_charged_rate() {
        // Same elapsed time per visible action, but one accountant
        // passed through more Maintains ⇒ it is charged at the lower
        // R_max(m) rate for the same Δt.
        let mk = || {
            LeakageAccountant::new(
                AccountingMode::RateTable {
                    table: table(),
                    cycles_per_unit: 100.0,
                    cooldown_units: 4.0,
                    delay_units: 4.0,
                    optimized: true,
                },
                None,
            )
        };
        let mut no_maintains = mk();
        let direct = no_maintains.on_assessment(ActionClass::Expand, 1600.0);

        let mut with_maintains = mk();
        with_maintains.on_assessment(ActionClass::Maintain, 400.0);
        with_maintains.on_assessment(ActionClass::Maintain, 800.0);
        with_maintains.on_assessment(ActionClass::Maintain, 1200.0);
        let after_run = with_maintains.on_assessment(ActionClass::Expand, 1600.0);

        assert!(
            after_run < direct,
            "3 maintains must reduce the charge: {after_run} !< {direct}"
        );
    }

    #[test]
    fn worst_case_charges_every_assessment() {
        let mode = AccountingMode::RateTable {
            table: table(),
            cycles_per_unit: 100.0,
            cooldown_units: 4.0,
            delay_units: 4.0,
            optimized: false,
        };
        let mut a = LeakageAccountant::new(mode, None);
        let b1 = a.on_assessment(ActionClass::Maintain, 400.0);
        assert!(b1 > 0.0, "worst case charges Maintains too");
        let b2 = a.on_assessment(ActionClass::Maintain, 800.0);
        assert!((b1 - b2).abs() < 1e-12, "equal periods, equal charges");
    }

    #[test]
    fn worst_case_exceeds_optimized() {
        let classes = [
            ActionClass::Maintain,
            ActionClass::Maintain,
            ActionClass::Expand,
            ActionClass::Maintain,
            ActionClass::Shrink,
        ];
        let run = |optimized| {
            let mut a = LeakageAccountant::new(
                AccountingMode::RateTable {
                    table: table(),
                    cycles_per_unit: 100.0,
                    cooldown_units: 4.0,
                    delay_units: 4.0,
                    optimized,
                },
                None,
            );
            for (i, &c) in classes.iter().enumerate() {
                a.on_assessment(c, (i as f64 + 1.0) * 400.0);
            }
            a.report().total_bits
        };
        assert!(run(false) > run(true));
    }

    #[test]
    fn budget_freezes_before_it_can_be_exceeded() {
        let mut a = LeakageAccountant::new(AccountingMode::PerAssessment { bits: 1.0 }, Some(2.5));
        assert!(matches!(a.gate(1.0), BudgetGate::Proceed));
        a.on_assessment(ActionClass::Expand, 1.0);
        assert!(!a.is_frozen());
        a.on_assessment(ActionClass::Expand, 2.0);
        // Two bits charged; a third would exceed 2.5: frozen now.
        assert!(a.is_frozen(), "no headroom for another charge");
        assert!(matches!(a.gate(3.0), BudgetGate::Skip));
        assert!(a.report().total_bits <= 2.5);
    }

    #[test]
    fn gate_forces_maintain_under_optimized_accounting() {
        let mut a = LeakageAccountant::new(
            AccountingMode::RateTable {
                table: table(),
                cycles_per_unit: 100.0,
                cooldown_units: 4.0,
                delay_units: 4.0,
                optimized: true,
            },
            Some(0.2),
        );
        // Long elapsed time: a visible action would cost more than the
        // 0.2-bit budget, but Maintains remain possible.
        assert!(matches!(a.gate(100_000.0), BudgetGate::MaintainOnly));
        let bits = a.on_assessment(ActionClass::Maintain, 100_000.0);
        assert_eq!(bits.to_bits(), 0.0f64.to_bits());
        assert!(!a.is_frozen());
    }

    #[test]
    fn replay_accumulation_across_runs_freezes_eventually() {
        // §6.2: the OS carries the accumulated leakage into each new
        // run; once the lifetime budget is spent, the program may never
        // resize again.
        let mut carried = 0.0;
        let budget = 5.0;
        let mut frozen_run = None;
        for run in 0..10 {
            let mut a = LeakageAccountant::with_initial_charge(
                AccountingMode::PerAssessment { bits: 1.0 },
                Some(budget),
                carried,
            );
            if a.is_frozen() || a.gate(1.0) == BudgetGate::Skip {
                frozen_run = Some(run);
                break;
            }
            a.on_assessment(ActionClass::Expand, 1.0);
            carried = a.report().total_bits;
            assert!(carried <= budget);
        }
        assert_eq!(
            frozen_run,
            Some(5),
            "five 1-bit runs exhaust a 5-bit budget"
        );
    }

    #[test]
    fn gate_without_budget_always_proceeds() {
        let a = LeakageAccountant::new(AccountingMode::PerAssessment { bits: 5.0 }, None);
        assert!(matches!(a.gate(1e12), BudgetGate::Proceed));
    }

    #[test]
    fn report_fractions() {
        let mut a = LeakageAccountant::new(AccountingMode::PerAssessment { bits: 0.0 }, None);
        a.on_assessment(ActionClass::Maintain, 1.0);
        a.on_assessment(ActionClass::Maintain, 2.0);
        a.on_assessment(ActionClass::Expand, 3.0);
        a.on_assessment(ActionClass::Maintain, 4.0);
        let r = a.report();
        assert_eq!(r.maintains, 3);
        assert_eq!(r.visible_actions, 1);
        assert!((r.maintain_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn state_roundtrip_is_bit_exact() {
        let mode = AccountingMode::RateTable {
            table: table(),
            cycles_per_unit: 100.0,
            cooldown_units: 4.0,
            delay_units: 4.0,
            optimized: true,
        };
        let mut a = LeakageAccountant::new(mode.clone(), Some(50.0));
        a.on_assessment(ActionClass::Maintain, 400.0);
        a.on_assessment(ActionClass::Expand, 800.0);
        a.on_assessment(ActionClass::Maintain, 1200.0);

        let mut b = LeakageAccountant::from_state(mode, Some(50.0), a.state());
        assert_eq!(b.state(), a.state());
        // The restored accountant charges the identical bits for the
        // identical next assessment — the crash-replay contract.
        let ba = b.on_assessment(ActionClass::Expand, 2000.0);
        let aa = a.on_assessment(ActionClass::Expand, 2000.0);
        assert_eq!(aa.to_bits(), ba.to_bits());
        assert_eq!(b.state(), a.state());
    }

    #[test]
    fn from_state_re_derives_freeze_from_totals() {
        // A (hand-damaged) snapshot claiming "not frozen" with a spent
        // budget restores frozen anyway: fail-closed, never laxer.
        let mut s =
            LeakageAccountant::new(AccountingMode::PerAssessment { bits: 1.0 }, Some(2.0)).state();
        s.report.total_bits = 5.0;
        s.frozen = false;
        let a = LeakageAccountant::from_state(
            AccountingMode::PerAssessment { bits: 1.0 },
            Some(2.0),
            s,
        );
        assert!(a.is_frozen());
    }

    #[test]
    fn charge_external_spends_budget_and_freezes_fail_closed() {
        let mut a = LeakageAccountant::new(AccountingMode::PerAssessment { bits: 1.0 }, Some(3.0));
        a.on_assessment(ActionClass::Expand, 1.0);
        assert!(!a.is_frozen());
        // The ambiguous-tail charge: counted bits rise, counters do not.
        a.charge_external(1.5);
        assert_eq!(a.report().assessments, 1);
        assert!((a.report().total_bits - 2.5).abs() < 1e-12);
        // 2.5 + 1.0 > 3.0: no headroom for another flat charge.
        assert!(a.is_frozen());
        assert!(matches!(a.gate(2.0), BudgetGate::Skip));
        // Negative charges are clamped: recovery can never refund.
        let before = a.report().total_bits;
        a.charge_external(-10.0);
        assert_eq!(a.report().total_bits.to_bits(), before.to_bits());
    }

    #[test]
    fn reset_counters_keeps_time_anchors() {
        let mut a = LeakageAccountant::new(
            AccountingMode::RateTable {
                table: table(),
                cycles_per_unit: 100.0,
                cooldown_units: 4.0,
                delay_units: 4.0,
                optimized: true,
            },
            None,
        );
        a.on_assessment(ActionClass::Expand, 400.0);
        a.reset_counters();
        assert_eq!(a.report().assessments, 0);
        // The next visible action is charged from the last visible time,
        // not from zero: both 400-cycle gaps cost the same.
        let mut b = a.clone();
        let bits = a.on_assessment(ActionClass::Expand, 800.0);
        let bits_again = b.on_assessment(ActionClass::Expand, 800.0);
        assert!(bits > 0.0);
        assert!((bits - bits_again).abs() < 1e-12);
    }
}
