//! Ground-truth leakage measurement by input enumeration (§3.2).
//!
//! "The most accurate way to measure leakage in a dynamic partitioning
//! scheme is to exhaustively enumerate all possible victim program
//! inputs (including their probability) and the resulting resizing
//! traces … the leakage of the program is calculated as the entropy of
//! these traces." The paper dismisses this as infeasible at real scale
//! — but at simulation scale it is exactly what validates the runtime
//! bound: run the scheme once per input, build the trace ensemble, and
//! compare its entropy against what the accountant charged.

use crate::action::{Action, ResizingTrace};
use untangle_info::decompose::{LeakageBreakdown, TraceEnsemble};
use untangle_info::{InfoError, Result};

/// Converts a resizing trace into the (action sequence, timing
/// sequence) pair of §5.1, quantizing decision cycles to `resolution`
/// cycles per time unit.
///
/// # Panics
///
/// Panics if `resolution` is not positive.
pub fn trace_to_sequences(trace: &ResizingTrace, resolution: f64) -> (Vec<Action>, Vec<u64>) {
    assert!(resolution > 0.0, "resolution must be positive");
    let actions = trace.action_sequence();
    let mut times = Vec::with_capacity(trace.len());
    let mut last = 0u64;
    for e in trace.entries() {
        let mut t = (e.decided_at_cycles / resolution).round() as u64;
        // Quantization may collapse near-coincident assessments; keep
        // the §3.2 strictly-increasing invariant.
        if t <= last {
            t = last + 1;
        }
        times.push(t);
        last = t;
    }
    (actions, times)
}

/// Runs `run` once per enumerated input and measures the entropy of
/// the realized resizing traces — the ground-truth leakage, decomposed
/// into action and scheduling parts (Eq. 5.6).
///
/// * `input_probs` — the probability of each input (must sum to 1);
/// * `resolution` — attacker time resolution in cycles per unit;
/// * `run` — produces the victim's resizing trace for input `i`.
///
/// # Errors
///
/// Propagates ensemble validation errors (e.g. invalid probabilities).
pub fn measure_leakage<F>(
    input_probs: &[f64],
    resolution: f64,
    mut run: F,
) -> Result<LeakageBreakdown>
where
    F: FnMut(usize) -> ResizingTrace,
{
    if input_probs.is_empty() {
        return Err(InfoError::EmptyAlphabet);
    }
    let mut ensemble: TraceEnsemble<Action> = TraceEnsemble::new();
    for (i, &p) in input_probs.iter().enumerate() {
        let trace = run(i);
        let (actions, times) = trace_to_sequences(&trace, resolution);
        ensemble.add_trace(actions, times, p);
    }
    ensemble.leakage()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::TraceEntry;
    use untangle_sim::config::PartitionSize;

    fn trace_with(times: &[f64], sizes: &[PartitionSize]) -> ResizingTrace {
        let mut t = ResizingTrace::new();
        let mut current = PartitionSize::MB2;
        for (&at, &size) in times.iter().zip(sizes) {
            let action = Action::set_size(size);
            t.push(TraceEntry {
                action,
                class: action.classify(current),
                decided_at_cycles: at,
                applied_at_cycles: at,
            });
            current = size;
        }
        t
    }

    #[test]
    fn identical_traces_leak_nothing() {
        let l = measure_leakage(&[0.5, 0.5], 100.0, |_| {
            trace_with(&[1000.0, 2000.0], &[PartitionSize::MB4, PartitionSize::MB4])
        })
        .unwrap();
        assert_eq!(l.total_bits(), 0.0);
    }

    #[test]
    fn action_divergence_shows_as_action_leakage() {
        let l = measure_leakage(&[0.5, 0.5], 100.0, |i| {
            let size = if i == 0 {
                PartitionSize::MB4
            } else {
                PartitionSize::MB1
            };
            trace_with(&[1000.0], &[size])
        })
        .unwrap();
        assert!((l.action_bits - 1.0).abs() < 1e-12);
        assert_eq!(l.scheduling_bits, 0.0);
    }

    #[test]
    fn timing_divergence_shows_as_scheduling_leakage() {
        let l = measure_leakage(&[0.5, 0.5], 100.0, |i| {
            let at = if i == 0 { 1000.0 } else { 5000.0 };
            trace_with(&[at], &[PartitionSize::MB4])
        })
        .unwrap();
        assert_eq!(l.action_bits, 0.0);
        assert!((l.scheduling_bits - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantization_respects_strict_ordering() {
        // Two assessments 10 cycles apart at a 1000-cycle resolution
        // collapse to the same unit; the helper must keep them ordered.
        let (_, times) = trace_to_sequences(
            &trace_with(&[1000.0, 1010.0], &[PartitionSize::MB4, PartitionSize::MB4]),
            1000.0,
        );
        assert!(times[1] > times[0]);
    }

    #[test]
    fn coarser_resolution_reports_less_scheduling_leakage() {
        // The attacker's clock granularity caps what timing can carry.
        let run = |resolution: f64| {
            measure_leakage(&[0.25, 0.25, 0.25, 0.25], resolution, |i| {
                trace_with(&[1000.0 + 100.0 * i as f64], &[PartitionSize::MB4])
            })
            .unwrap()
            .scheduling_bits
        };
        let fine = run(10.0);
        let coarse = run(100_000.0);
        assert!((fine - 2.0).abs() < 1e-9, "fine clock separates all four");
        assert!(
            coarse < fine,
            "coarse clock must collapse timings: {coarse} !< {fine}"
        );
    }

    #[test]
    fn rejects_empty_inputs() {
        let r = measure_leakage(&[], 1.0, |_| ResizingTrace::new());
        assert!(matches!(r, Err(InfoError::EmptyAlphabet)));
    }
}
