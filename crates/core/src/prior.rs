//! The prior dynamic partitioning schemes of Table 1, expressed in the
//! framework's component taxonomy (Table 2).
//!
//! These are descriptive models — useful for documentation, tests that
//! exercise the taxonomy, and the bench harness that prints Table 1 —
//! not faithful reimplementations of each system. The evaluation's
//! conventional baseline (the Time scheme) follows the same pattern:
//! a wall-clock resizing schedule with a utilization-driven heuristic.

/// The three components that characterize a dynamic partitioning scheme
/// (Table 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeComponents {
    /// Scheme name.
    pub name: &'static str,
    /// The partitioned resource.
    pub resource: &'static str,
    /// How demand for the resource is measured.
    pub utilization_metric: &'static str,
    /// How the resizing action is picked.
    pub action_heuristic: &'static str,
    /// When assessments happen.
    pub resizing_schedule: &'static str,
    /// Whether the schedule is wall-clock (time-based) — the property
    /// Untangle's Principle 2 forbids.
    pub time_based_schedule: bool,
}

/// The prior schemes of Table 1.
pub const PRIOR_SCHEMES: [SchemeComponents; 4] = [
    SchemeComponents {
        name: "UMON",
        resource: "Last-level cache (LLC)",
        utilization_metric: "Number of LLC hits under different partition sizes",
        action_heuristic: "Pick partition sizes that maximize global LLC hits",
        resizing_schedule: "Every 5M cycles",
        time_based_schedule: true,
    },
    SchemeComponents {
        name: "Jigsaw",
        resource: "LLC",
        utilization_metric: "Similar to UMON",
        action_heuristic: "Peekahead algorithm in software",
        resizing_schedule: "Every 50M cycles",
        time_based_schedule: true,
    },
    SchemeComponents {
        name: "Jumanji",
        resource: "LLC",
        utilization_metric: "Tail latency of network requests",
        action_heuristic: "Compare to static thresholds",
        resizing_schedule: "Every 100ms",
        time_based_schedule: true,
    },
    SchemeComponents {
        name: "SecSMT",
        resource: "Pipeline structures shared between SMT threads",
        utilization_metric: "Number of \"full\" events",
        action_heuristic: "Increase the partition that has the most \"full\" events",
        resizing_schedule: "Every 100 K cycles",
        time_based_schedule: true,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_prior_schemes_use_time_based_schedules() {
        // The observation that motivates Principle 2: every prior scheme
        // in Table 1 ties assessments to elapsed time.
        for s in &PRIOR_SCHEMES {
            assert!(s.time_based_schedule, "{} should be time-based", s.name);
        }
    }

    #[test]
    fn table_has_the_four_rows() {
        let names: Vec<&str> = PRIOR_SCHEMES.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["UMON", "Jigsaw", "Jumanji", "SecSMT"]);
    }
}
