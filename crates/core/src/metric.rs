//! Utilization metrics (Table 2, Principle 1 of §5.2).
//!
//! A metric observes the domain's retired memory accesses and produces
//! the value the action heuristic consumes — here, the UMON-style *hit
//! curve* (expected LLC hits under every candidate partition size), or
//! alternatively a memory footprint.
//!
//! The crucial distinction is *what* each metric is allowed to see:
//!
//! * [`HitCurveMetric`] with [`MetricPolicy::PublicOnly`] is Untangle's
//!   timing-independent, annotation-aware metric. It observes only
//!   retired accesses whose resource usage is public, in program order.
//! * [`HitCurveMetric`] with [`MetricPolicy::All`] models the
//!   conventional scheme: every access counts, so secret-dependent
//!   demand flows straight into resizing decisions (Edge ① of Fig. 2).
//! * [`FootprintMetric`] is the footprint example from §5.2 — a second
//!   timing-independent metric used by examples and ablations.

use crate::taint::{Label, Labeled};
use untangle_sim::config::MachineConfig;
use untangle_sim::umon::{FootprintMonitor, HitCurve, UtilityMonitor};
use untangle_trace::Instr;

/// Which retired accesses a metric may observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricPolicy {
    /// Only accesses with public resource usage (annotation-aware,
    /// Untangle). Removes Edge ① of Figure 2.
    PublicOnly,
    /// Every access (conventional scheme).
    All,
}

impl MetricPolicy {
    /// The taint label of everything this metric produces: a
    /// public-only metric's outputs are derivable from public accesses
    /// alone; an all-seeing metric's outputs carry secret-dependent
    /// demand (Edge ① of Fig. 2) and are labeled [`Label::Secret`].
    pub const fn label(self) -> Label {
        match self {
            MetricPolicy::PublicOnly => Label::Public,
            MetricPolicy::All => Label::Secret,
        }
    }
}

/// The UMON-style hit-curve metric.
#[derive(Debug, Clone)]
pub struct HitCurveMetric {
    policy: MetricPolicy,
    monitor: UtilityMonitor,
}

impl HitCurveMetric {
    /// Builds the metric for a machine's LLC and monitoring parameters.
    pub fn new(machine: &MachineConfig, policy: MetricPolicy) -> Self {
        Self {
            policy,
            monitor: UtilityMonitor::new(machine),
        }
    }

    /// The observation policy.
    pub fn policy(&self) -> MetricPolicy {
        self.policy
    }

    /// Observes one retired instruction (program order).
    pub fn observe(&mut self, instr: &Instr) {
        let Some(access) = instr.mem_access() else {
            return;
        };
        if self.policy == MetricPolicy::PublicOnly && !instr.counts_toward_utilization() {
            return;
        }
        self.monitor.observe(access.addr);
    }

    /// The current hit curve over the monitor window, labeled by what
    /// this metric was allowed to see ([`MetricPolicy::label`]): a
    /// conventional all-seeing curve is `Secret` and must be
    /// declassified before it can drive a resizing decision.
    pub fn hit_curve(&self) -> Labeled<HitCurve> {
        Labeled::new(self.monitor.hit_curve(), self.policy.label())
    }

    /// Sampled accesses currently in the window (for slack scaling).
    /// Unlabeled: the fill only feeds decisions alongside the curve, so
    /// the curve's label already covers the flow.
    pub fn window_fill(&self) -> usize {
        self.monitor.window_fill()
    }
}

/// The footprint metric: unique lines among recent public accesses.
#[derive(Debug, Clone)]
pub struct FootprintMetric {
    policy: MetricPolicy,
    monitor: FootprintMonitor,
}

impl FootprintMetric {
    /// Builds a footprint metric over the last `window` accesses.
    pub fn new(window: usize, policy: MetricPolicy) -> Self {
        Self {
            policy,
            monitor: FootprintMonitor::new(window),
        }
    }

    /// Observes one retired instruction (program order).
    pub fn observe(&mut self, instr: &Instr) {
        let Some(access) = instr.mem_access() else {
            return;
        };
        if self.policy == MetricPolicy::PublicOnly && !instr.counts_toward_utilization() {
            return;
        }
        self.monitor.observe(access.addr);
    }

    /// The footprint in bytes, labeled by [`MetricPolicy::label`].
    pub fn footprint_bytes(&self) -> Labeled<u64> {
        Labeled::new(self.monitor.footprint_bytes(), self.policy.label())
    }

    /// Accesses currently in the window.
    pub fn window_fill(&self) -> usize {
        self.monitor.window_fill()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use untangle_trace::instr::{Annotations, LineAddr};

    fn secret_load(line: u64) -> Instr {
        Instr::load(LineAddr::new(line)).with_annotations(Annotations::SECRET)
    }

    fn machine() -> MachineConfig {
        MachineConfig {
            umon_window: 1000,
            ..MachineConfig::default()
        }
    }

    #[test]
    fn public_only_metric_ignores_secret_accesses() {
        let mut m = HitCurveMetric::new(&machine(), MetricPolicy::PublicOnly);
        for _ in 0..5 {
            for l in 0..4096u64 {
                m.observe(&secret_load(l));
            }
        }
        assert_eq!(m.window_fill(), 0, "secret accesses must be invisible");
        assert_eq!(m.hit_curve(), Labeled::public([0; 9]));
    }

    #[test]
    fn metric_outputs_carry_the_policy_label() {
        let public = HitCurveMetric::new(&machine(), MetricPolicy::PublicOnly);
        assert_eq!(public.hit_curve().label(), Label::Public);
        let all = HitCurveMetric::new(&machine(), MetricPolicy::All);
        assert_eq!(all.hit_curve().label(), Label::Secret);
        assert_eq!(MetricPolicy::PublicOnly.label(), Label::Public);
        assert_eq!(MetricPolicy::All.label(), Label::Secret);
    }

    #[test]
    fn all_policy_metric_sees_secret_accesses() {
        let mut m = HitCurveMetric::new(&machine(), MetricPolicy::All);
        for _ in 0..5 {
            for l in 0..65536u64 {
                m.observe(&secret_load(l));
            }
        }
        assert!(m.window_fill() > 0, "conventional metric sees everything");
    }

    #[test]
    fn metric_identical_across_secrets_with_annotations() {
        // Two runs where the secret part differs, the public part is the
        // same: the PublicOnly hit curves must be bit-identical.
        let run = |secret_lines: &[u64]| {
            let mut m = HitCurveMetric::new(&machine(), MetricPolicy::PublicOnly);
            for round in 0..4 {
                let _ = round;
                for &l in secret_lines {
                    m.observe(&secret_load(l));
                }
                for l in 0..8192u64 {
                    m.observe(&Instr::load(LineAddr::new(1 << 20 | l)));
                }
            }
            m.hit_curve()
        };
        let a = run(&[1, 2, 3]);
        let b = run(&(5000..9000).collect::<Vec<_>>());
        assert_eq!(a.label(), Label::Public);
        assert_eq!(a, b);
    }

    #[test]
    fn compute_instructions_do_not_touch_metric() {
        let mut m = HitCurveMetric::new(&machine(), MetricPolicy::All);
        for _ in 0..1000 {
            m.observe(&Instr::compute());
        }
        assert_eq!(m.window_fill(), 0);
    }

    #[test]
    fn footprint_metric_respects_policy() {
        let mut pub_only = FootprintMetric::new(100, MetricPolicy::PublicOnly);
        let mut all = FootprintMetric::new(100, MetricPolicy::All);
        for l in 0..10u64 {
            pub_only.observe(&secret_load(l));
            all.observe(&secret_load(l));
        }
        assert_eq!(pub_only.footprint_bytes(), Labeled::public(0));
        assert_eq!(all.footprint_bytes().label(), Label::Secret);
        assert_eq!(all.footprint_bytes().declassify("test::footprint"), 640);
    }
}
