//! End-to-end checks for the `untangle-flow` analysis: the workspace
//! itself must be clean modulo the checked-in baseline, and seeded
//! violations — a secret reaching a decision commit without
//! `declassify()`, and HashMap iteration feeding the serve output
//! merge — must be caught with their full source→…→sink path chains.

use std::fs;
use std::path::{Path, PathBuf};

use untangle_analysis::flow::analyze_workspace;
use untangle_analysis::parse::parse_workspace;
use untangle_analysis::report::{apply_baseline, Baseline, Finding};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Mirrors the real `taint::sites` registry shape so fixtures exercise
/// the same declassify-site validation as the workspace.
const REGISTRY: &str = "\
/// Registered disclosure sites.
pub mod sites {
    /// Demo metric site.
    pub const CONVENTIONAL_METRIC: &str = \"metric::all_accesses_hit_curve\";
}
";

fn analyze_fixture(name: &str, files: &[(&str, &str)]) -> Vec<Finding> {
    let fixture = workspace_root()
        .join("target")
        .join(format!("flow-fixture-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&fixture);
    for (rel, src) in files {
        let path = fixture.join(rel);
        fs::create_dir_all(path.parent().expect("fixture path has a parent"))
            .expect("create fixture tree");
        fs::write(&path, src).expect("write fixture source");
    }
    let ws = parse_workspace(&fixture).expect("fixture parse succeeds");
    let findings = analyze_workspace(&ws);
    fs::remove_dir_all(&fixture).expect("clean up fixture");
    findings
}

#[test]
fn repository_is_flow_clean_modulo_baseline() {
    let root = workspace_root();
    let ws = parse_workspace(&root).expect("workspace parse succeeds");
    let findings = analyze_workspace(&ws);
    let baseline = Baseline::load(&root.join("flow-baseline.txt")).expect("baseline file loads");
    let (fresh, _accepted, stale) = apply_baseline(findings, &baseline);
    assert!(
        fresh.is_empty(),
        "repo must be flow-clean modulo the baseline, found:\n{}",
        fresh
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("")
    );
    assert!(
        stale.is_empty(),
        "flow-baseline.txt has stale entries (remove them):\n{}",
        stale.join("\n")
    );
}

#[test]
fn seeded_secret_to_decision_flow_is_caught_with_full_chain() {
    // A runner-shaped module: the secret curve skips `declassify()` and
    // flows through a helper into the decision commit.
    let runner = format!(
        "{REGISTRY}\
/// Decision sink.
pub struct DecisionCore;
impl DecisionCore {{
    /// Emits a resizing decision.
    pub fn commit(&mut self, action: u64) {{ let _ = action; }}
}}
fn emit_decision(core: &mut DecisionCore, action: u64) {{
    core.commit(action);
}}
/// One scheduler step: derives the action from the secret-labeled
/// metric WITHOUT declassifying it first.
pub fn step(core: &mut DecisionCore) {{
    let curve = Labeled::secret(42u64);
    emit_decision(core, curve);
}}
"
    );
    let findings = analyze_fixture("secret", &[("crates/sim/src/runner.rs", &runner)]);
    let secret: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "secret-flow")
        .collect();
    assert_eq!(secret.len(), 1, "{findings:?}");
    let f = secret[0];
    assert_eq!(f.file, "crates/sim/src/runner.rs");
    let chain: Vec<&str> = f.chain.iter().map(|s| s.what.as_str()).collect();
    assert_eq!(
        chain,
        [
            "source: Labeled::secret",
            "call: crates/sim/src/runner.rs::emit_decision",
            "sink: decision commit",
        ],
        "full source→call→sink path must be reported"
    );
    // Every hop carries a position.
    assert!(f.chain.iter().all(|s| s.line > 0 && s.col > 0), "{f:?}");

    // Control: the same flow THROUGH declassify at a registered site is
    // legal.
    let legal = runner.replace(
        "emit_decision(core, curve);",
        "emit_decision(core, curve.declassify(sites::CONVENTIONAL_METRIC));",
    );
    let findings = analyze_fixture("secret-legal", &[("crates/sim/src/runner.rs", &legal)]);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn seeded_hashmap_iteration_into_serve_merge_is_caught_with_full_chain() {
    // A serve-shaped module: per-tenant lines are gathered by iterating
    // a HashMap and merged into the ordered output without sorting.
    let serve = "\
/// Ordered output sink.
pub struct Output;
impl Output {
    /// Merges tenant lines into the serve response.
    pub fn ingest(&mut self, lines: Vec<String>) { let _ = lines; }
}
/// Gathers per-tenant summaries in HashMap iteration order.
pub fn merge_tenants(out: &mut Output, tenants: &HashMap<u64, String>) {
    let mut lines = Vec::new();
    for (id, summary) in tenants.iter() {
        lines.push(summary.clone());
        let _ = id;
    }
    out.ingest(lines);
}
";
    let findings = analyze_fixture("nondet", &[("crates/serve/src/engine.rs", serve)]);
    let nondet: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.rule == "nondet-iter")
        .collect();
    assert_eq!(nondet.len(), 1, "{findings:?}");
    let f = nondet[0];
    assert_eq!(f.file, "crates/serve/src/engine.rs");
    let chain: Vec<&str> = f.chain.iter().map(|s| s.what.as_str()).collect();
    assert_eq!(
        chain,
        [
            "source: unordered iteration over `tenants`",
            "sink: serve output merge",
        ],
        "full source→sink path must be reported"
    );

    // Control: sorting before the merge restores determinism.
    let sorted = serve.replace(
        "out.ingest(lines);",
        "lines.sort();\n    out.ingest(lines);",
    );
    let findings = analyze_fixture("nondet-sorted", &[("crates/serve/src/engine.rs", &sorted)]);
    assert!(findings.is_empty(), "{findings:?}");
}
