//! Golden-file tests for the `untangle-lint` and `untangle-flow`
//! binaries: each `tests/golden/*.golden` fixture declares a tool
//! invocation, a set of source files, the exact expected stdout, and
//! the expected exit code.
//!
//! Fixture format — sections introduced by `//== ` marker lines:
//!
//! ```text
//! //== run: flow --deny-stale
//! //== file: crates/core/src/lib.rs
//! ...source written into a temp workspace...
//! //== stdout
//! ...expected stdout, with the temp root spelled <ROOT>...
//! //== exit: 1
//! ```
//!
//! Fixture sources live inside `.golden` files (not checked-in `.rs`),
//! so the repo's own lint/flow gates never scan them; the harness
//! materializes them under `target/` at run time. Re-bless expectations
//! with `GOLDEN_BLESS=1 cargo test -p untangle-analysis --test golden`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

#[derive(Debug, Default)]
struct Fixture {
    run: String,
    files: Vec<(String, String)>,
    stdout: String,
    exit: i32,
}

fn parse_fixture(text: &str) -> Fixture {
    let mut fx = Fixture::default();
    let mut section: Option<(String, String)> = None; // (kind, body)
    let flush = |section: &mut Option<(String, String)>, fx: &mut Fixture| {
        if let Some((kind, body)) = section.take() {
            match kind.split_once(": ") {
                Some(("file", rel)) => fx.files.push((rel.to_string(), body)),
                _ if kind == "stdout" => fx.stdout = body,
                _ => panic!("unterminated or unknown golden section `{kind}`"),
            }
        }
    };
    for line in text.lines() {
        if let Some(header) = line.strip_prefix("//== ") {
            flush(&mut section, &mut fx);
            if let Some(cmd) = header.strip_prefix("run: ") {
                fx.run = cmd.to_string();
            } else if let Some(code) = header.strip_prefix("exit: ") {
                fx.exit = code.trim().parse().expect("exit code parses");
            } else {
                section = Some((header.to_string(), String::new()));
            }
        } else if let Some((_, body)) = section.as_mut() {
            body.push_str(line);
            body.push('\n');
        }
    }
    flush(&mut section, &mut fx);
    fx
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn run_fixture(name: &str, path: &Path, bless: bool) -> Result<(), String> {
    let text = fs::read_to_string(path).expect("read golden fixture");
    let fx = parse_fixture(&text);
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join(format!("golden-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    for (rel, src) in &fx.files {
        let p = root.join(rel);
        fs::create_dir_all(p.parent().expect("fixture path has a parent"))
            .expect("create fixture tree");
        fs::write(&p, src).expect("write fixture source");
    }

    let mut words = fx.run.split_whitespace();
    let tool = words.next().expect("run section names a tool");
    let exe = match tool {
        "lint" => env!("CARGO_BIN_EXE_untangle-lint"),
        "flow" => env!("CARGO_BIN_EXE_untangle-flow"),
        other => panic!("unknown tool `{other}` in golden fixture"),
    };
    let output = Command::new(exe)
        .arg("--root")
        .arg(&root)
        .args(words)
        .output()
        .expect("run tool binary");
    fs::remove_dir_all(&root).expect("clean up fixture");

    let stdout =
        String::from_utf8_lossy(&output.stdout).replace(&root.display().to_string(), "<ROOT>");
    let code = output.status.code().unwrap_or(-1);

    if bless {
        let mut blessed = String::new();
        for line in text.lines() {
            if line.starts_with("//== stdout") || line.starts_with("//== exit: ") {
                break;
            }
            blessed.push_str(line);
            blessed.push('\n');
        }
        blessed.push_str("//== stdout\n");
        blessed.push_str(&stdout);
        blessed.push_str(&format!("//== exit: {code}\n"));
        fs::write(path, blessed).expect("bless golden fixture");
        return Ok(());
    }

    let mut problems = Vec::new();
    if stdout != fx.stdout {
        problems.push(format!(
            "stdout mismatch:\n--- expected ---\n{}--- actual ---\n{}",
            fx.stdout, stdout
        ));
    }
    if code != fx.exit {
        problems.push(format!(
            "exit code mismatch: expected {} got {code}",
            fx.exit
        ));
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

#[test]
fn golden_fixtures_match() {
    let bless = std::env::var_os("GOLDEN_BLESS").is_some();
    let mut names: Vec<(String, PathBuf)> = fs::read_dir(golden_dir())
        .expect("golden fixture directory exists")
        .map(|e| e.expect("read dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "golden"))
        .map(|p| {
            (
                p.file_stem()
                    .expect("fixture has a stem")
                    .to_string_lossy()
                    .into_owned(),
                p,
            )
        })
        .collect();
    names.sort();
    assert!(!names.is_empty(), "no golden fixtures found");
    let mut failures = Vec::new();
    for (name, path) in &names {
        if let Err(e) = run_fixture(name, path, bless) {
            failures.push(format!("[{name}]\n{e}"));
        }
    }
    assert!(
        failures.is_empty(),
        "{} golden fixture(s) failed:\n{}",
        failures.len(),
        failures.join("\n\n")
    );
}
