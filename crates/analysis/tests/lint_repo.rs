//! End-to-end checks for the `untangle-lint` scanner: the workspace
//! itself must be clean, and a seeded violation must be caught with an
//! exact `file:line` diagnostic.

use std::fs;
use std::path::{Path, PathBuf};

use untangle_analysis::lint::{lint_workspace, LintConfig, Rule};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn repository_is_lint_clean() {
    let violations =
        lint_workspace(&workspace_root(), &LintConfig::default()).expect("workspace scan succeeds");
    assert!(
        violations.is_empty(),
        "repo must be lint-clean, found:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn seeded_wall_clock_violation_is_caught_with_file_and_line() {
    // The fixture lives under the workspace target dir (unique per
    // process) so parallel test runs can't collide.
    let fixture = workspace_root()
        .join("target")
        .join(format!("lint-fixture-{}", std::process::id()));
    let src_dir = fixture.join("crates/core/src");
    fs::create_dir_all(&src_dir).expect("create fixture tree");
    fs::write(
        src_dir.join("schedule.rs"),
        "pub fn now_cycles() -> u128 {\n    std::time::Instant::now().elapsed().as_nanos()\n}\n",
    )
    .expect("write seeded violation");

    let violations =
        lint_workspace(&fixture, &LintConfig::default()).expect("fixture scan succeeds");
    fs::remove_dir_all(&fixture).expect("clean up fixture");

    assert_eq!(violations.len(), 1, "{violations:?}");
    let v = &violations[0];
    assert_eq!(v.rule, Rule::WallClock);
    assert_eq!(v.file, Path::new("crates/core/src/schedule.rs"));
    assert_eq!(v.line, 2);
    let rendered = v.to_string();
    assert!(
        rendered.starts_with("crates/core/src/schedule.rs:2:"),
        "{rendered}"
    );
}

#[test]
fn seeded_panic_in_core_is_caught_but_allowed_in_sim() {
    let fixture = workspace_root()
        .join("target")
        .join(format!("lint-fixture-panic-{}", std::process::id()));
    for krate in ["core", "sim"] {
        let dir = fixture.join("crates").join(krate).join("src");
        fs::create_dir_all(&dir).expect("create fixture tree");
        fs::write(
            dir.join("lib.rs"),
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        )
        .expect("write seeded violation");
    }

    let violations =
        lint_workspace(&fixture, &LintConfig::default()).expect("fixture scan succeeds");
    fs::remove_dir_all(&fixture).expect("clean up fixture");

    // Only the core copy violates: sim is outside the panic-free zone.
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].rule, Rule::PanicFree);
    assert_eq!(violations[0].file, Path::new("crates/core/src/lib.rs"));
}
