//! Taint-flow driver: `cargo run -p untangle-analysis --bin untangle-flow`.
//!
//! Parses the workspace, runs the interprocedural secret-taint and
//! determinism dataflow (see [`untangle_analysis::flow`]), applies the
//! checked-in baseline, and prints one finding per illegal flow with
//! its full source→…→sink chain. Exits non-zero when a **new** (not
//! baselined) finding is present, so CI can use it as a hard gate
//! while accepted findings stay visible in the JSON report.
//!
//! Flags:
//!
//! * `--root <dir>` — workspace root to scan (default: the current
//!   directory, falling back to this crate's workspace).
//! * `--baseline <file>` — baseline file of accepted finding keys
//!   (default: `<root>/flow-baseline.txt`).
//! * `--write-baseline` — rewrite the baseline file to accept every
//!   current finding, then exit 0.
//! * `--json <file>` — also write the machine-readable report.
//! * `--deny-stale` — fail (exit 1) if the baseline contains entries
//!   no current finding matches, keeping the accepted set tight.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use untangle_analysis::flow::analyze_workspace;
use untangle_analysis::parse::parse_workspace;
use untangle_analysis::report::{apply_baseline, render_json_report, Baseline};
use untangle_durable::atomic::atomic_write;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut write_baseline = false;
    let mut deny_stale = false;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("untangle-flow: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("untangle-flow: --baseline needs a file argument");
                    return ExitCode::from(2);
                }
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("untangle-flow: --json needs a file argument");
                    return ExitCode::from(2);
                }
            },
            "--write-baseline" => write_baseline = true,
            "--deny-stale" => deny_stale = true,
            "--help" | "-h" => {
                println!(
                    "usage: untangle-flow [--root <dir>] [--baseline <file>] \
                     [--json <file>] [--write-baseline] [--deny-stale]\n\
                     \n\
                     Interprocedural secret-taint + determinism dataflow over the\n\
                     Untangle workspace.\n\
                     Rules: secret-flow (Labeled value reaches a decision commit,\n\
                     serve output merge, durable write, process output, or obs\n\
                     event without declassify()/require_public()), nondet-iter\n\
                     (HashMap/HashSet iteration feeds ordered output), nondet-time\n\
                     (wall-clock read flows to a sink outside bench/obs),\n\
                     unknown-declassify-site (literal site not in taint::sites).\n\
                     Exits 1 on new findings (or, with --deny-stale, on stale\n\
                     baseline entries); baselined findings never fail the gate."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("untangle-flow: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = root.unwrap_or_else(|| {
        let cwd = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        if cwd.join("crates").is_dir() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        }
    });
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("flow-baseline.txt"));

    let ws = match parse_workspace(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("untangle-flow: parse failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let findings = analyze_workspace(&ws);

    if write_baseline {
        let text = Baseline::render(&findings);
        if let Err(e) = atomic_write(&baseline_path, text.as_bytes()) {
            eprintln!(
                "untangle-flow: writing baseline {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "untangle-flow: baseline written ({} finding(s)) to {}",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match Baseline::load(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "untangle-flow: reading baseline {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };
    let (fresh, accepted, stale) = apply_baseline(findings, &baseline);

    if let Some(json_path) = &json_path {
        let report = render_json_report(&root.display().to_string(), &fresh, &accepted, &stale);
        if let Err(e) = atomic_write(json_path, report.as_bytes()) {
            eprintln!("untangle-flow: writing report {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }

    for f in &fresh {
        print!("{f}");
    }
    for key in &stale {
        println!("stale-baseline: {key}");
    }
    let stale_fails = deny_stale && !stale.is_empty();
    if fresh.is_empty() && !stale_fails {
        println!(
            "untangle-flow: clean ({}, {} baselined, {} stale)",
            root.display(),
            accepted.len(),
            stale.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "untangle-flow: {} new finding(s), {} baselined, {} stale in {}",
            fresh.len(),
            accepted.len(),
            stale.len(),
            root.display()
        );
        ExitCode::FAILURE
    }
}
