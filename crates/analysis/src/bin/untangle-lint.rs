//! Repo lint driver: `cargo run -p untangle-analysis --bin untangle-lint`.
//!
//! Scans the workspace's Rust sources for the repo invariants (see
//! [`untangle_analysis::lint`]) and prints one `severity:
//! file:line:col: rule: message` line per finding. Exits non-zero only
//! when an **error**-severity violation is found, so CI can use it as a
//! hard gate while diagnostic-severity findings (e.g. `eprintln!`
//! outside the obs sink) are surfaced without failing the build.
//!
//! Flags:
//!
//! * `--root <dir>` — workspace root to scan (default: the current
//!   directory, falling back to this crate's workspace when run via
//!   `cargo run`).
//! * `--include-tests` — extend the panic-free and float-eq rules into
//!   test code (discovery mode; not used by CI).

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use untangle_analysis::lint::{lint_workspace, LintConfig, Severity};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config = LintConfig::default();
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("untangle-lint: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--include-tests" => config.include_tests = true,
            "--help" | "-h" => {
                println!(
                    "usage: untangle-lint [--root <dir>] [--include-tests]\n\
                     \n\
                     Token-level repo lint for the Untangle workspace.\n\
                     Error rules: panic-free, float-eq, wall-clock, unsafe-code,\n\
                     raw-persist (File::create / fs::rename / fs::write outside\n\
                     crates/durable).\n\
                     Diagnostic rules: eprintln (outside the obs sink).\n\
                     Exits 1 only if an error-severity violation is found;\n\
                     diagnostics are reported but never fail the gate."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("untangle-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    // Default root: the current directory if it looks like the
    // workspace, else the workspace this binary was built from (so
    // `cargo run -p untangle-analysis --bin untangle-lint` works from
    // any subdirectory).
    let root = root.unwrap_or_else(|| {
        let cwd = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        if cwd.join("crates").is_dir() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        }
    });

    match lint_workspace(&root, &config) {
        Ok(violations) if violations.is_empty() => {
            println!("untangle-lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{}: {v}", v.severity());
            }
            let errors = violations
                .iter()
                .filter(|v| v.severity() == Severity::Error)
                .count();
            let diagnostics = violations.len() - errors;
            eprintln!(
                "untangle-lint: {errors} error(s), {diagnostics} diagnostic(s) in {}",
                root.display()
            );
            if errors > 0 {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("untangle-lint: scan failed under {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
