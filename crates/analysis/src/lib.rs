//! Static analysis for the Untangle reproduction.
//!
//! Two tools live here, both dependency-free:
//!
//! * [`certify`] — a **non-interference certifier**. For each
//!   partitioning scheme it fixes a public workload (a secret-
//!   equivalence class), enumerates victim secrets within the class,
//!   replays the scheme once per secret under the `untangle-core`
//!   taint audit, and checks that the resizing-action trace is
//!   constant across the class. The result is a machine-readable
//!   [`certify::Certificate`]: `ActionLeakFree`, or the exact
//!   `declassify` sites through which secret-dependent data reached
//!   the resizing decision (§5.1 action leakage, §6 annotations).
//! * [`lint`] — a **token-level repo lint** (`untangle-lint` binary)
//!   enforcing the workspace's own invariants: panic-free framework
//!   code, no float `==`, no wall-clock types outside the bench
//!   harness, no `unsafe` anywhere.
//!
//! The certifier is dynamic (it runs the simulator); the lint is
//! static (it scans source tokens). Together they close the loop the
//! paper draws in Fig. 2: the type layer (`untangle_core::taint`)
//! makes secret flows visible at compile time, the lint keeps the
//! decision modules free of timing ambient authority, and the
//! certifier independently confirms the end-to-end non-interference
//! property those mechanisms are meant to guarantee.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certify;
pub mod lint;

pub use certify::{certify_scheme, Certificate, CertifyConfig, Verdict};
pub use lint::{lint_workspace, FileScope, LintConfig, Rule, Violation};
