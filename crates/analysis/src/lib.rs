//! Static analysis for the Untangle reproduction.
//!
//! Three tools live here, all dependency-free:
//!
//! * [`certify`] — a **non-interference certifier**. For each
//!   partitioning scheme it fixes a public workload (a secret-
//!   equivalence class), enumerates victim secrets within the class,
//!   replays the scheme once per secret under the `untangle-core`
//!   taint audit, and checks that the resizing-action trace is
//!   constant across the class. The result is a machine-readable
//!   [`certify::Certificate`]: `ActionLeakFree`, or the exact
//!   `declassify` sites through which secret-dependent data reached
//!   the resizing decision (§5.1 action leakage, §6 annotations).
//! * [`lint`] — a **token-level repo lint** (`untangle-lint` binary)
//!   enforcing the workspace's own invariants: panic-free framework
//!   code, no float `==`, no wall-clock types outside the bench
//!   harness, no `unsafe` anywhere.
//! * [`flow`] — an **interprocedural taint + determinism dataflow
//!   analysis** (`untangle-flow` binary) layered on the same
//!   tokenizer: [`parse`] builds per-file item trees and the
//!   `taint::sites` registry, [`callgraph`] resolves a function-level
//!   call graph, [`flow`] runs forward dataflow over it, and
//!   [`report`] renders findings with full source→…→sink chains, a
//!   stable-key baseline, and a JSON report.
//!
//! The certifier is dynamic (it runs the simulator); the lint and the
//! flow analysis are static (they scan source tokens). Together they
//! close the loop the paper draws in Fig. 2: the type layer
//! (`untangle_core::taint`) makes secret flows visible at compile
//! time, the lint keeps the decision modules free of timing ambient
//! authority, the flow analysis checks that every `Labeled` value
//! reaches decisions, durable state, and telemetry only through
//! registered `declassify` sites, and the certifier independently
//! confirms the end-to-end non-interference property those mechanisms
//! are meant to guarantee.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod certify;
pub mod flow;
pub mod lint;
pub mod parse;
pub mod report;

pub use certify::{certify_scheme, Certificate, CertifyConfig, Verdict};
pub use flow::analyze_workspace;
pub use lint::{lint_workspace, FileScope, LintConfig, Rule, Violation};
pub use parse::{parse_workspace, Workspace};
pub use report::{apply_baseline, render_json_report, Baseline, ChainStep, Finding};
