//! Call extraction and function-level name resolution for
//! `untangle-flow`.
//!
//! For every file the extractor records each call expression — bare
//! (`helper(x)`), qualified (`Labeled::secret(x)`), method
//! (`core.commit(a, t)`), and macro (`println!(…)`) — together with the
//! token ranges of its top-level arguments, so the dataflow pass can
//! evaluate argument taint positionally and recurse into nested calls.
//!
//! Resolution is tiered and name-based (there is no type inference):
//! qualified calls match functions whose impl owner equals the
//! qualifier, method calls match any same-named method (all candidates
//! are linked — the analysis treats their summaries conservatively),
//! and bare calls prefer same-file free functions before falling back
//! to any same-named free function. Unresolvable names (the standard
//! library, macros) stay unresolved: the dataflow pass propagates
//! taint through them from arguments to result.

use std::collections::BTreeMap;

use crate::lint::{TokKind, Token};
use crate::parse::{match_delims, Workspace};

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallStyle {
    /// `name(args)`.
    Bare,
    /// `Qual::name(args)` — `qual` is the path segment before the name.
    Qualified(String),
    /// `recv.name(args)` — `receiver` is the closest preceding
    /// identifier when the receiver is a simple variable or field.
    Method {
        /// Simple receiver name, when syntactically evident.
        receiver: Option<String>,
    },
    /// `name!(args)` — macro invocation (any delimiter).
    Macro,
}

/// One call expression inside a file's token stream.
#[derive(Debug, Clone)]
pub struct Call {
    /// Token index of the callee name.
    pub name_tok: usize,
    /// Callee name.
    pub name: String,
    /// Call syntax.
    pub style: CallStyle,
    /// Inclusive token ranges of the top-level arguments.
    pub args: Vec<(usize, usize)>,
    /// Token index of the closing delimiter.
    pub end: usize,
    /// Resolved candidate callees (indices into [`Workspace::fns`]).
    pub resolved: Vec<usize>,
}

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: [&str; 12] = [
    "if", "while", "for", "match", "return", "loop", "fn", "else", "in", "let", "move", "as",
];

/// Extracts every call in one file's token stream, keyed by the token
/// index of the callee name.
pub fn extract_calls(toks: &[Token]) -> BTreeMap<usize, Call> {
    let parens = match_delims(toks, '(', ')');
    let brackets = match_delims(toks, '[', ']');
    let braces = match_delims(toks, '{', '}');
    let mut calls = BTreeMap::new();
    for (i, t) in toks.iter().enumerate() {
        let name = match &t.kind {
            TokKind::Ident(n) => n.clone(),
            _ => continue,
        };
        if NON_CALL_KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        let next = toks.get(i + 1).map(|t| &t.kind);
        let (style, open, close) = if next == Some(&TokKind::Punct('!')) {
            // Macro: the delimiter may be any of ( [ {.
            let d = i + 2;
            let close = match toks.get(d).map(|t| &t.kind) {
                Some(TokKind::Punct('(')) => parens.get(&d),
                Some(TokKind::Punct('[')) => brackets.get(&d),
                Some(TokKind::Punct('{')) => braces.get(&d),
                _ => None,
            };
            match close {
                Some(&c) => (CallStyle::Macro, d, c),
                None => continue,
            }
        } else if next == Some(&TokKind::Punct('(')) {
            let prev = i.checked_sub(1).map(|p| &toks[p].kind);
            if prev == Some(&TokKind::Ident("fn".to_string())) {
                continue; // definition, not a call
            }
            let close = match parens.get(&(i + 1)) {
                Some(&c) => c,
                None => continue,
            };
            let style = if prev == Some(&TokKind::Punct('.')) {
                let receiver = match i.checked_sub(2).map(|p| &toks[p].kind) {
                    Some(TokKind::Ident(r)) => Some(r.clone()),
                    _ => None,
                };
                CallStyle::Method { receiver }
            } else if prev == Some(&TokKind::Punct(':'))
                && i.checked_sub(2).map(|p| &toks[p].kind) == Some(&TokKind::Punct(':'))
            {
                match i.checked_sub(3).map(|p| &toks[p].kind) {
                    Some(TokKind::Ident(q)) => CallStyle::Qualified(q.clone()),
                    _ => CallStyle::Bare,
                }
            } else {
                CallStyle::Bare
            };
            (style, i + 1, close)
        } else {
            continue;
        };
        calls.insert(
            i,
            Call {
                name_tok: i,
                name,
                style,
                args: split_args(toks, open, close),
                end: close,
                resolved: Vec::new(),
            },
        );
    }
    calls
}

/// Splits the delimiter contents `(open, close)` at top-level commas
/// into inclusive token ranges (empty args collapse away).
fn split_args(toks: &[Token], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut args = Vec::new();
    let mut depth = 0usize;
    let mut start = open + 1;
    let mut j = open + 1;
    while j < close {
        match &toks[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                depth = depth.saturating_sub(1)
            }
            TokKind::Punct(',') if depth == 0 => {
                if start < j {
                    args.push((start, j - 1));
                }
                start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    if start < close {
        args.push((start, close - 1));
    }
    args
}

/// Resolves every call in `calls` (belonging to `file_idx`) against the
/// workspace's function inventory.
pub fn resolve_calls(ws: &Workspace, file_idx: usize, calls: &mut BTreeMap<usize, Call>) {
    // name → candidate fn ids, split by free-vs-method.
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut frees: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if f.owner.is_some() {
            methods.entry(f.name.as_str()).or_default().push(id);
        } else {
            frees.entry(f.name.as_str()).or_default().push(id);
        }
    }
    for call in calls.values_mut() {
        call.resolved = match &call.style {
            CallStyle::Macro => Vec::new(),
            CallStyle::Qualified(qual) => {
                let named: Vec<usize> = methods
                    .get(call.name.as_str())
                    .into_iter()
                    .flatten()
                    .copied()
                    .filter(|&id| ws.fns[id].owner.as_deref() == Some(qual.as_str()))
                    .collect();
                if named.is_empty() && qual == "Self" {
                    // `Self::name(…)`: any same-file method of that name.
                    methods
                        .get(call.name.as_str())
                        .into_iter()
                        .flatten()
                        .copied()
                        .filter(|&id| ws.fns[id].file == file_idx)
                        .collect()
                } else {
                    named
                }
            }
            CallStyle::Method { .. } => methods
                .get(call.name.as_str())
                .into_iter()
                .flatten()
                .copied()
                .collect(),
            CallStyle::Bare => {
                let all: Vec<usize> = frees
                    .get(call.name.as_str())
                    .into_iter()
                    .flatten()
                    .copied()
                    .collect();
                let local: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&id| ws.fns[id].file == file_idx)
                    .collect();
                if local.is_empty() {
                    all
                } else {
                    local
                }
            }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::tokenize;

    #[test]
    fn extracts_call_styles_and_args() {
        let toks = tokenize(
            "fn f() { g(1, 2); core.commit(a, t); Labeled::secret(x); println!(\"{}\", v); }",
        );
        let calls = extract_calls(&toks);
        let mut styles: Vec<(String, CallStyle, usize)> = calls
            .values()
            .map(|c| (c.name.clone(), c.style.clone(), c.args.len()))
            .collect();
        styles.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(
            styles,
            [
                (
                    "commit".into(),
                    CallStyle::Method {
                        receiver: Some("core".into())
                    },
                    2
                ),
                ("g".into(), CallStyle::Bare, 2),
                ("println".into(), CallStyle::Macro, 2),
                ("secret".into(), CallStyle::Qualified("Labeled".into()), 1),
            ]
        );
    }

    #[test]
    fn keywords_and_definitions_are_not_calls() {
        let toks = tokenize("fn f(x: bool) { if (x) { g(); } for v in (0..2) { } }");
        let calls = extract_calls(&toks);
        let names: Vec<&str> = calls.values().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["g"]);
    }
}
