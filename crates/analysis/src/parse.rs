//! Workspace front-end for `untangle-flow`.
//!
//! Layered on the hand-rolled tokenizer in [`crate::lint`], this module
//! parses every `.rs` file in the workspace into a per-file item tree:
//! function items with their parameter lists, body token ranges, and
//! impl-owner attribution, plus two global inventories the dataflow
//! pass needs — the `taint::sites` declassification registry (const
//! name → site string, extracted from any `mod sites { … }` block) and
//! the set of names declared with a `HashMap`/`HashSet` type (struct
//! fields, params, and annotated locals), which seed the determinism
//! pass.
//!
//! The parser is structural, not grammatical: it brace-matches item
//! bodies, angle-matches generics, and comma-splits parameter lists,
//! but never builds an AST. That is enough to attribute every call site
//! to an enclosing function and to know each function's arity — the
//! two facts the interprocedural summaries are keyed on.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lint::{collect_rs_files, mark_test_regions, tokenize, FileScope, TokKind, Token};

/// One tokenized source file plus the lint-level context the flow pass
/// reuses (test-region marking, path-derived scope).
pub struct SourceFile {
    /// Path relative to the workspace root (used in diagnostics).
    pub rel: PathBuf,
    /// The file's token stream.
    pub(crate) toks: Vec<Token>,
    /// Per-token test-region flags (`#[cfg(test)]` / `#[test]` bodies).
    pub(crate) in_test: Vec<bool>,
    /// Rule-applicability scope derived from the path.
    pub scope: FileScope,
}

/// A function item: the unit of the interprocedural analysis.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// The impl's self type (last path segment) when this is a method.
    pub owner: Option<String>,
    /// Stable qualified name: `<rel-path>::[Owner::]name`.
    pub qualname: String,
    /// Index of the containing file in [`Workspace::files`].
    pub file: usize,
    /// Parameter names in declaration order (`self` included; params
    /// bound by destructuring patterns get a positional placeholder).
    pub params: Vec<String>,
    /// Token range `[open_brace, close_brace]` of the body, if any
    /// (trait signatures have none).
    pub body: Option<(usize, usize)>,
    /// Whether the return type mentions `Labeled` — such functions
    /// produce secret-labeled values from their callers' perspective.
    pub returns_labeled: bool,
    /// Location of the `fn` name token.
    pub line: usize,
    /// Column of the `fn` name token.
    pub col: usize,
    /// Declared inside a test region or a whole-file test context.
    pub is_test: bool,
}

/// The parsed workspace: files, functions, and the global inventories.
pub struct Workspace {
    /// Workspace root the paths in [`SourceFile::rel`] are relative to.
    pub root: PathBuf,
    /// Every `.rs` file found under the root.
    pub files: Vec<SourceFile>,
    /// Every function item, across all files.
    pub fns: Vec<FnItem>,
    /// Registered declassification site strings (the values of consts
    /// inside any `mod sites { … }`).
    pub site_values: BTreeSet<String>,
    /// Site const name → site string, for resolving `sites::NAME`
    /// arguments to `declassify` / `require_public`.
    pub site_consts: BTreeMap<String, String>,
    /// Names declared anywhere with a `HashMap`/`HashSet` type
    /// annotation (fields, params, locals): iteration over these is
    /// nondeterministically ordered.
    pub hash_names: BTreeSet<String>,
}

/// Parses every `.rs` file under `root/crates`, `root/src`,
/// `root/tests`, and `root/examples` into a [`Workspace`].
///
/// # Errors
///
/// Propagates I/O failures reading the tree, so a truncated scan can't
/// pass as clean.
pub fn parse_workspace(root: &Path) -> io::Result<Workspace> {
    let mut paths = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut paths)?;
        }
    }
    paths.sort();

    let mut ws = Workspace {
        root: root.to_path_buf(),
        files: Vec::new(),
        fns: Vec::new(),
        site_values: BTreeSet::new(),
        site_consts: BTreeMap::new(),
        hash_names: BTreeSet::new(),
    };
    for path in paths {
        let src = fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let toks = tokenize(&src);
        let in_test = mark_test_regions(&toks);
        let scope = FileScope::of(&rel);
        let idx = ws.files.len();
        ws.files.push(SourceFile {
            rel,
            toks,
            in_test,
            scope,
        });
        scan_file(&mut ws, idx);
    }
    Ok(ws)
}

/// Computes the matching close index for every `{`/`(` in the stream.
pub(crate) fn match_delims(toks: &[Token], open: char, close: char) -> BTreeMap<usize, usize> {
    let mut map = BTreeMap::new();
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match &t.kind {
            TokKind::Punct(c) if *c == open => stack.push(i),
            TokKind::Punct(c) if *c == close => {
                if let Some(o) = stack.pop() {
                    map.insert(o, i);
                }
            }
            _ => {}
        }
    }
    map
}

/// Skips a balanced `<…>` generics group starting at `i` (which must
/// point at `<`); returns the index one past the closing `>`. `->` is
/// not a closer.
fn skip_angles(toks: &[Token], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') => {
                let arrow = j > 0 && toks[j - 1].kind == TokKind::Punct('-');
                if !arrow {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j + 1;
                    }
                }
            }
            TokKind::Punct(';') | TokKind::Punct('{') => return j,
            _ => {}
        }
        j += 1;
    }
    j
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Extracts the self-type name of an `impl` header starting at `i`
/// (the `impl` token): the last angle-depth-0 path segment before the
/// body (after `for` when present, before any `where` clause). Returns
/// `(owner, body_open_index)`.
fn impl_owner(toks: &[Token], i: usize) -> (Option<String>, Option<usize>) {
    let mut j = i + 1;
    let mut angle = 0usize;
    let mut owner: Option<String> = None;
    let mut after_where = false;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') if j > 0 && toks[j - 1].kind != TokKind::Punct('-') => {
                angle = angle.saturating_sub(1)
            }
            TokKind::Punct('{') if angle == 0 => return (owner, Some(j)),
            TokKind::Punct(';') if angle == 0 => return (owner, None),
            TokKind::Ident(name) if angle == 0 && !after_where => {
                if name == "where" {
                    after_where = true;
                } else if name == "for" {
                    owner = None; // the trait path was not the self type
                } else if name != "dyn" && name != "impl" {
                    owner = Some(name.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    (owner, None)
}

/// Splits the parameter list inside `(open, close)` into per-parameter
/// names. Each top-level comma segment is one parameter: its name is
/// the first identifier directly followed by `:` at segment top level,
/// `self` for receivers, or a positional placeholder for destructuring
/// patterns.
fn param_names(toks: &[Token], open: usize, close: usize) -> Vec<String> {
    let mut params = Vec::new();
    let mut depth = 0usize;
    let mut angle = 0usize;
    let mut seg: Vec<usize> = Vec::new();
    let flush = |seg: &mut Vec<usize>, params: &mut Vec<String>| {
        if seg.is_empty() {
            return;
        }
        let mut name: Option<String> = None;
        for (k, &ti) in seg.iter().enumerate() {
            if let TokKind::Ident(id) = &toks[ti].kind {
                if id == "self" {
                    name = Some("self".to_string());
                    break;
                }
                let next_colon = seg
                    .get(k + 1)
                    .map(|&nj| toks[nj].kind == TokKind::Punct(':'))
                    .unwrap_or(false);
                if next_colon && id != "mut" && id != "ref" {
                    name = Some(id.clone());
                    break;
                }
            }
        }
        params.push(name.unwrap_or_else(|| format!("_arg{}", params.len())));
        seg.clear();
    };
    let mut j = open + 1;
    while j < close {
        match &toks[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => {
                depth += 1;
                seg.push(j);
            }
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                seg.push(j);
            }
            TokKind::Punct('<') => {
                angle += 1;
                seg.push(j);
            }
            TokKind::Punct('>') if toks[j - 1].kind != TokKind::Punct('-') => {
                angle = angle.saturating_sub(1);
                seg.push(j);
            }
            TokKind::Punct(',') if depth == 0 && angle == 0 => flush(&mut seg, &mut params),
            _ => seg.push(j),
        }
        j += 1;
    }
    flush(&mut seg, &mut params);
    params
}

/// Scans one tokenized file for function items, site-registry consts,
/// and hash-typed names, appending to the workspace inventories.
fn scan_file(ws: &mut Workspace, file_idx: usize) {
    let (toks, in_test, test_file, rel) = {
        let f = &ws.files[file_idx];
        (
            f.toks.clone(),
            f.in_test.clone(),
            f.scope.test_file,
            f.rel.clone(),
        )
    };
    let braces = match_delims(&toks, '{', '}');
    let parens = match_delims(&toks, '(', ')');
    let rel_str = rel.display().to_string().replace('\\', "/");

    // Impl-owner context: a stack of (close_brace_idx, owner).
    let mut owners: Vec<(usize, String)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        while owners.last().map(|&(c, _)| i > c).unwrap_or(false) {
            owners.pop();
        }
        let name = match ident_at(&toks, i) {
            Some(n) => n.to_string(),
            None => {
                i += 1;
                continue;
            }
        };
        match name.as_str() {
            "impl" => {
                let (owner, body) = impl_owner(&toks, i);
                if let (Some(owner), Some(open)) = (owner, body) {
                    if let Some(&close) = braces.get(&open) {
                        owners.push((close, owner));
                    }
                }
            }
            "mod" if ident_at(&toks, i + 1) == Some("sites") => {
                // Site registry: `mod sites { pub const N: &str = "v"; … }`.
                if let Some(open) =
                    (i..toks.len().min(i + 6)).find(|&j| toks[j].kind == TokKind::Punct('{'))
                {
                    if let Some(&close) = braces.get(&open) {
                        collect_sites(ws, &toks, open, close);
                    }
                }
            }
            "fn" => {
                if let Some(item) = scan_fn(
                    &toks, &braces, &parens, i, file_idx, &rel_str, &owners, &in_test, test_file,
                ) {
                    ws.fns.push(item);
                }
            }
            _ => {
                // Hash-typed declarations: `name : [&[mut]] HashMap <`
                // (struct fields, params, annotated locals alike).
                if name == "HashMap" || name == "HashSet" {
                    let mut k = i;
                    while k > 0 {
                        match &toks[k - 1].kind {
                            TokKind::Punct('&') => k -= 1,
                            TokKind::Ident(id) if id == "mut" => k -= 1,
                            _ => break,
                        }
                    }
                    if k >= 2 && toks[k - 1].kind == TokKind::Punct(':') {
                        if let Some(decl) = ident_at(&toks, k - 2) {
                            ws.hash_names.insert(decl.to_string());
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

/// Collects `const NAME: &str = "value";` pairs inside a `mod sites`
/// body into the workspace site registry.
fn collect_sites(ws: &mut Workspace, toks: &[Token], open: usize, close: usize) {
    let mut j = open;
    while j < close {
        if ident_at(toks, j) == Some("const") {
            if let Some(cname) = ident_at(toks, j + 1) {
                let cname = cname.to_string();
                // First string literal before the terminating `;`.
                let mut k = j + 2;
                while k < close && toks[k].kind != TokKind::Punct(';') {
                    if let TokKind::Str(value) = &toks[k].kind {
                        ws.site_values.insert(value.clone());
                        ws.site_consts.insert(cname.clone(), value.clone());
                        break;
                    }
                    k += 1;
                }
                j = k;
            }
        }
        j += 1;
    }
}

/// Parses one `fn` item starting at token `i` (the `fn` keyword).
#[allow(clippy::too_many_arguments)]
fn scan_fn(
    toks: &[Token],
    braces: &BTreeMap<usize, usize>,
    parens: &BTreeMap<usize, usize>,
    i: usize,
    file_idx: usize,
    rel_str: &str,
    owners: &[(usize, String)],
    in_test: &[bool],
    test_file: bool,
) -> Option<FnItem> {
    let name = ident_at(toks, i + 1)?.to_string();
    let name_tok = &toks[i + 1];
    // Skip generics between the name and the parameter list.
    let mut j = i + 2;
    if toks.get(j).map(|t| &t.kind) == Some(&TokKind::Punct('<')) {
        j = skip_angles(toks, j);
    }
    if toks.get(j).map(|t| &t.kind) != Some(&TokKind::Punct('(')) {
        return None;
    }
    let pclose = *parens.get(&j)?;
    let params = param_names(toks, j, pclose);
    // Return type: everything between `)` and the body `{` (or `;`).
    let mut k = pclose + 1;
    let mut returns_labeled = false;
    let mut body = None;
    while k < toks.len() {
        match &toks[k].kind {
            TokKind::Punct('{') => {
                body = braces.get(&k).map(|&c| (k, c));
                break;
            }
            TokKind::Punct(';') => break,
            TokKind::Ident(id) if id == "Labeled" => returns_labeled = true,
            _ => {}
        }
        k += 1;
    }
    let owner = owners.last().map(|(_, o)| o.clone());
    let qualname = match &owner {
        Some(o) => format!("{rel_str}::{o}::{name}"),
        None => format!("{rel_str}::{name}"),
    };
    Some(FnItem {
        is_test: test_file || in_test.get(i + 1).copied().unwrap_or(false),
        name,
        owner,
        qualname,
        file: file_idx,
        params,
        body,
        returns_labeled,
        line: name_tok.line,
        col: name_tok.col,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(src: &str) -> Workspace {
        let toks = tokenize(src);
        let in_test = mark_test_regions(&toks);
        let mut ws = Workspace {
            root: PathBuf::from("."),
            files: vec![SourceFile {
                rel: PathBuf::from("crates/core/src/x.rs"),
                toks,
                in_test,
                scope: FileScope::of(Path::new("crates/core/src/x.rs")),
            }],
            fns: Vec::new(),
            site_values: BTreeSet::new(),
            site_consts: BTreeMap::new(),
            hash_names: BTreeSet::new(),
        };
        scan_file(&mut ws, 0);
        ws
    }

    #[test]
    fn functions_get_owners_params_and_bodies() {
        let src = "struct Core;\n\
                   impl Core {\n fn commit(&self, a: u64, t: u64) -> bool { true }\n}\n\
                   impl From<u8> for Core {\n fn from(v: u8) -> Core { Core }\n}\n\
                   fn free<T: Clone>(x: T, (a, b): (u8, u8)) {}\n";
        let ws = parse_one(src);
        let names: Vec<&str> = ws.fns.iter().map(|f| f.qualname.as_str()).collect();
        assert_eq!(
            names,
            [
                "crates/core/src/x.rs::Core::commit",
                "crates/core/src/x.rs::Core::from",
                "crates/core/src/x.rs::free",
            ]
        );
        assert_eq!(ws.fns[0].params, ["self", "a", "t"]);
        assert_eq!(ws.fns[2].params, ["x", "_arg1"]);
        assert!(ws.fns.iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn labeled_returns_and_trait_signatures() {
        let src = "trait S { fn probe(&self) -> Labeled<f64>; }\n\
                   fn mk() -> Result<Labeled<u64>, ()> { Err(()) }\n";
        let ws = parse_one(src);
        assert!(ws.fns.iter().all(|f| f.returns_labeled));
        assert!(ws.fns[0].body.is_none());
        assert!(ws.fns[1].body.is_some());
    }

    #[test]
    fn site_registry_and_hash_names_are_collected() {
        let src = "pub mod sites {\n pub const A: &str = \"metric::a\";\n \
                   pub const B: &str = \"serve::b\";\n pub const ALL: [&str; 2] = [A, B];\n}\n\
                   struct S { domains: HashMap<u64, u8> }\n\
                   fn f(m: &HashSet<u64>) { let local: HashMap<u8, u8> = Default::default(); }\n";
        let ws = parse_one(src);
        assert_eq!(
            ws.site_consts.get("A").map(String::as_str),
            Some("metric::a")
        );
        assert!(ws.site_values.contains("serve::b"));
        assert!(ws.hash_names.contains("domains"));
        assert!(ws.hash_names.contains("m"));
        assert!(ws.hash_names.contains("local"));
    }

    #[test]
    fn test_region_functions_are_marked() {
        let src = "#[cfg(test)]\nmod tests {\n fn helper() {}\n}\nfn live() {}\n";
        let ws = parse_one(src);
        assert!(ws.fns[0].is_test, "{:?}", ws.fns[0]);
        assert!(!ws.fns[1].is_test, "{:?}", ws.fns[1]);
    }
}
