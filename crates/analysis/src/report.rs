//! Finding model, baseline workflow, and report rendering for
//! `untangle-flow`.
//!
//! A [`Finding`] carries the full flow path — source → … → sink — as a
//! chain of [`ChainStep`]s with `file:line:col` anchors. Its baseline
//! [`Finding::key`] deliberately omits line/column numbers: it is built
//! from the rule id, the anchor file, and the chain's step labels
//! (which name functions, not positions), so accepted findings survive
//! unrelated edits that shift lines, while a *new* flow through a
//! different call path gets a new key and fails the gate.
//!
//! The machine-readable report is rendered through `untangle-obs`'s
//! dependency-free [`Json`] type, and the baseline file is plain text —
//! one key per line, `#` comments allowed — so accepting a finding is a
//! reviewable one-line diff.

use std::collections::BTreeSet;
use std::fmt;
use std::io;
use std::path::Path;

use untangle_obs::json::Json;

/// One hop of a flow path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainStep {
    /// What happens at this hop, e.g. `source: Labeled::secret` or
    /// `call: crates/serve/src/domain.rs::Domain::emit`. Must not
    /// contain positions (it feeds the stable baseline key).
    pub what: String,
    /// File of the hop, relative to the scanned root.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// A single `untangle-flow` finding with its full source→sink chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id (`secret-flow`, `nondet-iter`, `nondet-time`,
    /// `unknown-declassify-site`).
    pub rule: &'static str,
    /// Anchor file (the chain's first hop), relative to the root.
    pub file: String,
    /// Anchor line.
    pub line: usize,
    /// Anchor column.
    pub col: usize,
    /// Human-readable description of the illegal flow.
    pub message: String,
    /// The flow path, source first, sink last.
    pub chain: Vec<ChainStep>,
}

impl Finding {
    /// All flow rules gate CI, so every finding is error severity.
    pub fn severity(&self) -> &'static str {
        "error"
    }

    /// Stable baseline key: rule, anchor file, and the chain's step
    /// labels — no line/column numbers, so accepted findings survive
    /// unrelated edits.
    pub fn key(&self) -> String {
        let mut key = format!("{} {}", self.rule, self.file);
        for step in &self.chain {
            key.push_str(" | ");
            key.push_str(&step.what);
        }
        key
    }

    /// Renders as JSON (one object per finding in the report).
    pub fn to_json(&self, baselined: bool) -> Json {
        Json::obj(vec![
            ("rule", Json::Str(self.rule.to_string())),
            ("severity", Json::Str(self.severity().to_string())),
            ("file", Json::Str(self.file.clone())),
            ("line", Json::Int(self.line as i64)),
            ("col", Json::Int(self.col as i64)),
            ("message", Json::Str(self.message.clone())),
            ("baselined", Json::Bool(baselined)),
            (
                "path",
                Json::Arr(
                    self.chain
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("what", Json::Str(s.what.clone())),
                                ("file", Json::Str(s.file.clone())),
                                ("line", Json::Int(s.line as i64)),
                                ("col", Json::Int(s.col as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl fmt::Display for Finding {
    /// `error: file:line:col: rule: message` followed by one indented
    /// `flow:` line per chain hop.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {}:{}:{}: {}: {}",
            self.severity(),
            self.file,
            self.line,
            self.col,
            self.rule,
            self.message
        )?;
        for step in &self.chain {
            writeln!(
                f,
                "    flow: {} at {}:{}:{}",
                step.what, step.file, step.line, step.col
            )?;
        }
        Ok(())
    }
}

/// The set of accepted finding keys loaded from a baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Accepted keys (one per line in the file).
    pub keys: BTreeSet<String>,
}

impl Baseline {
    /// Parses baseline text: one key per line, blank lines and `#`
    /// comments ignored.
    pub fn parse(text: &str) -> Baseline {
        Baseline {
            keys: text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_string)
                .collect(),
        }
    }

    /// Loads a baseline file; a missing file is an empty baseline.
    ///
    /// # Errors
    ///
    /// Any I/O failure other than the file not existing.
    pub fn load(path: &Path) -> io::Result<Baseline> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(Baseline::parse(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(e),
        }
    }

    /// Renders findings as baseline text (sorted, deduplicated).
    pub fn render(findings: &[Finding]) -> String {
        let keys: BTreeSet<String> = findings.iter().map(Finding::key).collect();
        let mut out = String::from(
            "# untangle-flow baseline: accepted findings, one stable key per line.\n\
             # Regenerate with `untangle-flow --write-baseline <this file>`.\n",
        );
        for key in keys {
            out.push_str(&key);
            out.push('\n');
        }
        out
    }
}

/// Splits findings against a baseline into `(new, baselined)` and
/// returns the stale baseline keys (entries no current finding
/// matches) third.
pub fn apply_baseline(
    findings: Vec<Finding>,
    baseline: &Baseline,
) -> (Vec<Finding>, Vec<Finding>, Vec<String>) {
    let mut fresh = Vec::new();
    let mut accepted = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for f in findings {
        let key = f.key();
        if baseline.keys.contains(&key) {
            seen.insert(key);
            accepted.push(f);
        } else {
            fresh.push(f);
        }
    }
    let stale = baseline.keys.difference(&seen).cloned().collect();
    (fresh, accepted, stale)
}

/// Renders the full machine-readable report.
pub fn render_json_report(
    root: &str,
    fresh: &[Finding],
    baselined: &[Finding],
    stale: &[String],
) -> String {
    let mut items: Vec<Json> = Vec::new();
    for f in fresh {
        items.push(f.to_json(false));
    }
    for f in baselined {
        items.push(f.to_json(true));
    }
    Json::obj(vec![
        ("tool", Json::Str("untangle-flow".to_string())),
        ("root", Json::Str(root.to_string())),
        ("findings", Json::Arr(items)),
        (
            "stale_baseline",
            Json::Arr(stale.iter().map(|k| Json::Str(k.clone())).collect()),
        ),
        (
            "summary",
            Json::obj(vec![
                ("new", Json::Int(fresh.len() as i64)),
                ("baselined", Json::Int(baselined.len() as i64)),
                ("stale", Json::Int(stale.len() as i64)),
            ]),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, whats: &[&str]) -> Finding {
        Finding {
            rule,
            file: "crates/core/src/x.rs".to_string(),
            line: 3,
            col: 9,
            message: "m".to_string(),
            chain: whats
                .iter()
                .enumerate()
                .map(|(i, w)| ChainStep {
                    what: w.to_string(),
                    file: "crates/core/src/x.rs".to_string(),
                    line: i + 1,
                    col: 1,
                })
                .collect(),
        }
    }

    #[test]
    fn keys_ignore_positions_but_not_paths() {
        let a = finding("secret-flow", &["source: Labeled::secret", "sink: commit"]);
        let mut b = a.clone();
        b.line = 99;
        b.chain[0].line = 42;
        assert_eq!(a.key(), b.key());
        let c = finding(
            "secret-flow",
            &["source: Labeled::secret", "call: f", "sink: commit"],
        );
        assert_ne!(a.key(), c.key());
    }

    #[test]
    fn baseline_roundtrip_and_stale_detection() {
        let a = finding("secret-flow", &["source: s", "sink: k"]);
        let b = finding("nondet-iter", &["source: iter", "sink: k"]);
        let text = Baseline::render(&[a.clone(), b.clone()]);
        let baseline = Baseline::parse(&text);
        assert_eq!(baseline.keys.len(), 2);
        // Only `a` still fires: `b`'s key is stale.
        let (fresh, accepted, stale) = apply_baseline(vec![a.clone()], &baseline);
        assert!(fresh.is_empty());
        assert_eq!(accepted.len(), 1);
        assert_eq!(stale, vec![b.key()]);
    }

    #[test]
    fn json_report_parses_back() {
        let a = finding("secret-flow", &["source: s", "sink: k"]);
        let text = render_json_report(".", &[a], &[], &["old key".to_string()]);
        let json = Json::parse(&text).unwrap_or_else(|e| panic!("parse failed: {e}"));
        let findings = json.get("findings").and_then(Json::as_arr);
        assert_eq!(findings.map(<[Json]>::len), Some(1));
        let summary = json.get("summary");
        assert_eq!(
            summary.and_then(|s| s.get("stale")).and_then(Json::as_i64),
            Some(1)
        );
    }
}
