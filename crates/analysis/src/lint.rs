//! A dependency-free, token-level lint for the workspace's own
//! invariants.
//!
//! `rustc` and clippy enforce language rules; this lint enforces *repo*
//! rules that encode the paper's discipline:
//!
//! * [`Rule::PanicFree`] — no `unwrap`/`expect`/`panic!`-family macros
//!   in non-test code of `core`, `info`, and `analysis`: every fallible
//!   path in the framework and its substrates must flow through
//!   `UntangleError`/`InfoError` so a sweep records faults instead of
//!   dying. The rule also covers the experiment binaries
//!   (`crates/bench/src/bin`), which must report failures through a
//!   diagnostic and a nonzero exit status — the contract the
//!   crash-recovery harnesses and CI observe.
//! * [`Rule::FloatEq`] — no `==`/`!=` against float literals and no
//!   `assert_eq!`/`assert_ne!` spanning float literals: exactness
//!   claims must be explicit (`to_bits`) or toleranced.
//! * [`Rule::WallClock`] — no `Instant`/`SystemTime` outside the bench
//!   harness. This is Principle 2 as a build gate: scheme decision code
//!   must be timing-oblivious, so wall-clock types may not even be
//!   *named* in the simulation and framework crates.
//! * [`Rule::UnsafeCode`] — no `unsafe` anywhere, test code included
//!   (defense in depth behind the workspace `unsafe_code = "forbid"`
//!   lint: the token scan also covers macro bodies and code rustc
//!   conditionally compiles out).
//! * [`Rule::Eprintln`] — a [`Severity::Diagnostic`] finding: `eprintln!`
//!   in non-test code of `core`, `info`, and `sim` bypasses the
//!   `untangle-obs` sink, so such diagnostics disappear from structured
//!   event streams (`UNTANGLE_OBS=json`); route them through
//!   `untangle_obs::diag!`. Diagnostic-severity findings are reported
//!   but do not fail the build gate.
//! * [`Rule::RawPersist`] — `File::create` / `fs::rename` / `fs::write`
//!   in non-test code outside `crates/durable` bypasses the
//!   workspace's crash-consistency discipline (no fsync, no atomic
//!   replace, no fault-injection choke point); persist through
//!   `untangle_durable::atomic_write` or one of its typed primitives
//!   instead. Promoted to [`Severity::Error`] once `crates/durable`
//!   became the sole owner of raw persistence.
//!
//! The `untangle-obs` crate itself is the sanctioned owner of both
//! wall-clock reads (span timers) and the stderr escape hatch, so it is
//! exempt from [`Rule::WallClock`] and [`Rule::Eprintln`] while still
//! sitting inside the panic-free zone. It is also exempt from
//! [`Rule::RawPersist`]: its file sink is a best-effort diagnostic
//! stream, not durable state, and the obs crate sits *below*
//! `untangle-durable` in the crate DAG.
//!
//! The scanner is a hand-rolled Rust tokenizer (strings, raw strings,
//! nested block comments, char-vs-lifetime disambiguation, float
//! detection) — no syn, no proc-macro machinery, standard library only.
//! Test code is recognized per-token: `#[cfg(test)]` / `#[test]`
//! regions are brace-matched and skipped for the rules that exempt
//! tests, as are files under `tests/`, `benches/`, and `examples/`
//! directories.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which repo invariant a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
    /// `unimplemented!` in non-test framework code.
    PanicFree,
    /// Float literal compared with `==`/`!=` or inside
    /// `assert_eq!`/`assert_ne!`.
    FloatEq,
    /// `Instant`/`SystemTime` named outside the bench harness or the
    /// obs crate.
    WallClock,
    /// `unsafe` anywhere.
    UnsafeCode,
    /// `eprintln!` outside the obs sink in non-test `core`/`info`/`sim`
    /// code (diagnostic severity).
    Eprintln,
    /// `File::create` / `fs::rename` / `fs::write` outside
    /// `crates/durable` in non-test code: raw persistence bypasses the
    /// crash-consistency layer.
    RawPersist,
}

impl Rule {
    /// Stable machine-readable name used in diagnostics.
    pub const fn name(self) -> &'static str {
        match self {
            Rule::PanicFree => "panic-free",
            Rule::FloatEq => "float-eq",
            Rule::WallClock => "wall-clock",
            Rule::UnsafeCode => "unsafe-code",
            Rule::Eprintln => "eprintln",
            Rule::RawPersist => "raw-persist",
        }
    }

    /// How severe a violation of this rule is.
    pub const fn severity(self) -> Severity {
        match self {
            Rule::Eprintln => Severity::Diagnostic,
            _ => Severity::Error,
        }
    }
}

/// Whether a finding fails the build gate or is merely reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported, but does not fail the gate.
    Diagnostic,
    /// Fails the gate.
    Error,
}

impl Severity {
    /// Stable machine-readable name used in diagnostics.
    pub const fn name(self) -> &'static str {
        match self {
            Severity::Diagnostic => "diagnostic",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding, rendered as `file:line:col: rule: message`.
#[derive(Debug, Clone)]
pub struct Violation {
    /// File the violation is in.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// The broken rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl Violation {
    /// The severity of the broken rule.
    pub fn severity(&self) -> Severity {
        self.rule.severity()
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.file.display(),
            self.line,
            self.col,
            self.rule,
            self.message
        )
    }
}

/// Scanner options.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Extend [`Rule::FloatEq`] and [`Rule::PanicFree`] into test code
    /// (used to *find* candidate sites; CI runs with this off, so
    /// deliberate exactness tests via `to_bits` stay legal).
    pub include_tests: bool,
}

/// Where a file sits in the workspace, which decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileScope {
    /// Under `crates/core/src`, `crates/info/src`, `crates/obs/src`, or
    /// `crates/analysis/src` — the panic-free zone.
    pub panic_free_crate: bool,
    /// Under the bench crate, whose harness legitimately measures wall
    /// time.
    pub bench_crate: bool,
    /// Under `crates/bench/src/bin` — the experiment drivers. They are
    /// not framework code, but they are the artifacts CI and users run,
    /// so a panic there turns a reportable failure into a backtrace and
    /// a meaningless exit status; they share the panic-free rule.
    pub bench_bin: bool,
    /// Under the obs crate, the sanctioned owner of span clocks and the
    /// stderr diagnostic escape hatch.
    pub obs_crate: bool,
    /// Under `crates/core/src`, `crates/info/src`, or
    /// `crates/sim/src` — crates whose diagnostics must flow through the
    /// obs sink rather than raw `eprintln!`.
    pub obs_sink_crate: bool,
    /// Under the durable crate, the sanctioned owner of raw file
    /// creation and rename (everything else persists through it).
    pub durable_crate: bool,
    /// A whole-file test context: `tests/`, `benches/`, or `examples/`
    /// directory.
    pub test_file: bool,
}

impl FileScope {
    /// Derives the scope from a path relative to the workspace root.
    pub fn of(rel: &Path) -> Self {
        let parts: Vec<String> = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect();
        let under_src_of = |krate: &str| {
            parts
                .windows(3)
                .any(|w| w[0] == "crates" && w[1] == krate && w[2] == "src")
        };
        FileScope {
            panic_free_crate: under_src_of("core")
                || under_src_of("info")
                || under_src_of("obs")
                || under_src_of("analysis"),
            bench_crate: parts
                .windows(2)
                .any(|w| w[0] == "crates" && w[1] == "bench"),
            bench_bin: parts
                .windows(4)
                .any(|w| w[0] == "crates" && w[1] == "bench" && w[2] == "src" && w[3] == "bin"),
            obs_crate: parts.windows(2).any(|w| w[0] == "crates" && w[1] == "obs"),
            obs_sink_crate: under_src_of("core") || under_src_of("info") || under_src_of("sim"),
            durable_crate: parts
                .windows(2)
                .any(|w| w[0] == "crates" && w[1] == "durable"),
            test_file: parts
                .iter()
                .any(|p| p == "tests" || p == "benches" || p == "examples"),
        }
    }
}

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

/// Token classes the rules care about. Everything the scanner does not
/// need collapses into [`TokKind::Punct`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal (tuple indices `x.0` and range bounds `0..9`
    /// stay integers).
    Int,
    /// Float literal: fractional part, exponent, or `f32`/`f64` suffix.
    Float,
    /// String literal (plain, byte, or raw); carries the unescaped-as-
    /// written contents so downstream passes can match literal values
    /// (e.g. `declassify("site::name")` against the site registry).
    Str(String),
    /// Character or byte literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Any other single character.
    Punct(char),
}

impl TokKind {
    /// Whether this token is any flavour of string literal.
    pub fn is_str(&self) -> bool {
        matches!(self, TokKind::Str(_))
    }
}

/// One source token with its 1-based position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class (and payload, for identifiers and strings).
    pub kind: TokKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Tokenizes Rust source, dropping comments and whitespace. The goal is
/// fidelity for the token classes the rules inspect, not a full lexer:
/// unknown bytes become punctuation and never abort the scan.
pub(crate) fn tokenize(src: &str) -> Vec<Token> {
    let bytes: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;
    let n = bytes.len();

    macro_rules! bump {
        ($count:expr) => {{
            for _ in 0..$count {
                if i < n {
                    if bytes[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
        }};
    }
    let at = |i: usize, c: char| i < n && bytes[i] == c;

    while i < n {
        let c = bytes[i];
        let (tline, tcol) = (line, col);

        if c.is_whitespace() {
            bump!(1);
            continue;
        }

        // Line comment (covers `///` and `//!` doc comments too).
        if c == '/' && at(i + 1, '/') {
            while i < n && bytes[i] != '\n' {
                bump!(1);
            }
            continue;
        }

        // Block comment, nested.
        if c == '/' && at(i + 1, '*') {
            bump!(2);
            let mut depth = 1usize;
            while i < n && depth > 0 {
                if bytes[i] == '/' && at(i + 1, '*') {
                    depth += 1;
                    bump!(2);
                } else if bytes[i] == '*' && at(i + 1, '/') {
                    depth -= 1;
                    bump!(2);
                } else {
                    bump!(1);
                }
            }
            continue;
        }

        // Raw strings: r"..." / r#"..."# and byte variants br#"..."#.
        let raw_prefix = if c == 'r' && (at(i + 1, '"') || at(i + 1, '#')) {
            Some(1)
        } else if c == 'b' && at(i + 1, 'r') && (at(i + 2, '"') || at(i + 2, '#')) {
            Some(2)
        } else {
            None
        };
        if let Some(prefix) = raw_prefix {
            let mut j = i + prefix;
            let mut hashes = 0usize;
            while j < n && bytes[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if at(j, '"') {
                bump!(prefix + hashes + 1);
                // Scan for a `"` followed by `hashes` `#`s. Raw strings
                // have no escapes: every byte up to that terminator is
                // literal content.
                let mut content = String::new();
                while i < n {
                    if bytes[i] == '"' {
                        let mut k = 1usize;
                        while k <= hashes && at(i + k, '#') {
                            k += 1;
                        }
                        if k == hashes + 1 {
                            bump!(1 + hashes);
                            break;
                        }
                    }
                    content.push(bytes[i]);
                    bump!(1);
                }
                toks.push(Token {
                    kind: TokKind::Str(content),
                    line: tline,
                    col: tcol,
                });
                continue;
            }
            // `r` not opening a raw string: falls through to ident.
        }

        // Strings and byte strings.
        if c == '"' || (c == 'b' && at(i + 1, '"')) {
            if c == 'b' {
                bump!(1);
            }
            bump!(1);
            let mut content = String::new();
            while i < n {
                if bytes[i] == '\\' {
                    // Keep the simple escapes the site registry could
                    // plausibly contain; everything else stays as-written.
                    if let Some(&esc) = bytes.get(i + 1) {
                        content.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            '\\' => '\\',
                            '"' => '"',
                            other => other,
                        });
                    }
                    bump!(2);
                } else if bytes[i] == '"' {
                    bump!(1);
                    break;
                } else {
                    content.push(bytes[i]);
                    bump!(1);
                }
            }
            toks.push(Token {
                kind: TokKind::Str(content),
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Char literal vs lifetime: `'\…'` and `'x'` are chars; a quote
        // followed by an identifier with no closing quote is a lifetime.
        if c == '\'' {
            if at(i + 1, '\\') {
                bump!(2);
                while i < n && bytes[i] != '\'' {
                    bump!(1);
                }
                bump!(1);
                toks.push(Token {
                    kind: TokKind::Char,
                    line: tline,
                    col: tcol,
                });
            } else if i + 2 < n && bytes[i + 2] == '\'' {
                bump!(3);
                toks.push(Token {
                    kind: TokKind::Char,
                    line: tline,
                    col: tcol,
                });
            } else {
                bump!(1);
                while i < n && is_ident_char(bytes[i]) {
                    bump!(1);
                }
                toks.push(Token {
                    kind: TokKind::Lifetime,
                    line: tline,
                    col: tcol,
                });
            }
            continue;
        }

        // Numbers. The consumed text decides float-ness: a fractional
        // part (`.` followed by a digit, so `x.0` tuple access and
        // `0..9` ranges stay integers), a decimal exponent, or an
        // explicit f32/f64 suffix.
        if c.is_ascii_digit() {
            let mut text = String::new();
            while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                text.push(bytes[i]);
                bump!(1);
            }
            if at(i, '.') && i + 1 < n && bytes[i + 1].is_ascii_digit() {
                text.push('.');
                bump!(1);
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    text.push(bytes[i]);
                    bump!(1);
                }
            } else if at(i, '.')
                && !(i + 1 < n && (bytes[i + 1] == '.' || is_ident_char(bytes[i + 1])))
            {
                // Trailing-dot float like `1.`.
                text.push('.');
                bump!(1);
            }
            let decimal =
                !text.starts_with("0x") && !text.starts_with("0b") && !text.starts_with("0o");
            let is_float = text.contains('.')
                || (decimal
                    && (text.contains('e')
                        || text.contains('E')
                        || text.ends_with("f32")
                        || text.ends_with("f64")));
            toks.push(Token {
                kind: if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                },
                line: tline,
                col: tcol,
            });
            continue;
        }

        if is_ident_start(c) {
            let mut ident = String::new();
            while i < n && is_ident_char(bytes[i]) {
                ident.push(bytes[i]);
                bump!(1);
            }
            toks.push(Token {
                kind: TokKind::Ident(ident),
                line: tline,
                col: tcol,
            });
            continue;
        }

        toks.push(Token {
            kind: TokKind::Punct(c),
            line: tline,
            col: tcol,
        });
        bump!(1);
    }
    toks
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

// ---------------------------------------------------------------------
// Test-region marking
// ---------------------------------------------------------------------

/// Marks which tokens live inside `#[cfg(test)]` / `#[test]` /
/// `#[should_panic…]` regions by matching the extent of the item that
/// follows the attribute.
///
/// The attributed item's extent is found structurally: scanning past
/// the attribute (and any further attributes stacked on the same item),
/// the item ends either at the matching `}` of its first body brace
/// (`mod`/`fn`/`impl`/…) or at the first `;` at delimiter depth zero
/// (`use`, `mod name;`, `const … = …;`, `type …;`). The `;` case
/// matters: a `#[cfg(test)] use …;` must not swallow the *next* item's
/// braces, which would hide real violations in live code.
pub(crate) fn mark_test_regions(toks: &[Token]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(mut j) = test_attribute_end(toks, i) {
            // Stacked attributes: `#[cfg(test)] #[allow(…)] item` — skip
            // every further attribute before looking for the item body.
            while toks.get(j).map(|t| &t.kind) == Some(&TokKind::Punct('#')) {
                match attribute_end(toks, j) {
                    Some(next) => j = next,
                    None => break,
                }
            }
            // Find the item's extent: first `{` (then brace-match) or
            // first `;` at delimiter depth 0, whichever comes first.
            let mut depth = 0usize;
            let mut brace_depth = 0usize;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') => depth = depth.saturating_sub(1),
                    TokKind::Punct('{') => brace_depth += 1,
                    TokKind::Punct('}') => {
                        brace_depth = brace_depth.saturating_sub(1);
                        if brace_depth == 0 {
                            break;
                        }
                    }
                    TokKind::Punct(';') if depth == 0 && brace_depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            for flag in in_test.iter_mut().take(j + 1).skip(i) {
                *flag = true;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    in_test
}

/// If the token at `i` opens an attribute (`#[…]`), returns the index
/// one past its closing `]` (bracket-matched, so nested `[]`/`()` in
/// the attribute body are handled).
fn attribute_end(toks: &[Token], i: usize) -> Option<usize> {
    if toks.get(i).map(|t| &t.kind) != Some(&TokKind::Punct('#'))
        || toks.get(i + 1).map(|t| &t.kind) != Some(&TokKind::Punct('['))
    {
        return None;
    }
    let mut depth = 0usize;
    let mut j = i + 1;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// If the token at `i` starts a test attribute, returns the index one
/// past its closing `]`.
///
/// Recognized: `#[test]`, `#[should_panic…]`, and any `#[cfg(…)]`
/// whose predicate names `test` *positively* — `#[cfg(test)]` and
/// combinators like `#[cfg(all(test, feature = "x"))]`. A predicate
/// containing `not` (e.g. `#[cfg(not(test))]`) is conservatively
/// treated as live code: wrongly linting test code fails loudly in CI,
/// while wrongly *skipping* live code hides real violations.
pub(crate) fn test_attribute_end(toks: &[Token], i: usize) -> Option<usize> {
    let end = attribute_end(toks, i)?;
    match toks.get(i + 2).map(|t| &t.kind) {
        Some(TokKind::Ident(name)) if name == "test" || name == "should_panic" => Some(end),
        Some(TokKind::Ident(name)) if name == "cfg" => {
            let mut has_test = false;
            let mut has_not = false;
            for t in &toks[i + 3..end] {
                if let TokKind::Ident(arg) = &t.kind {
                    has_test |= arg == "test";
                    has_not |= arg == "not";
                }
            }
            (has_test && !has_not).then_some(end)
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
const WALL_CLOCK_TYPES: [&str; 2] = ["Instant", "SystemTime"];

/// Lints one file's source text under the given scope.
pub fn lint_source(
    file: &Path,
    src: &str,
    scope: FileScope,
    config: &LintConfig,
) -> Vec<Violation> {
    let toks = tokenize(src);
    let in_test = mark_test_regions(&toks);
    let mut out = Vec::new();
    let is_test = |idx: usize| scope.test_file || in_test.get(idx).copied().unwrap_or(false);
    let push = |out: &mut Vec<Violation>, t: &Token, rule: Rule, message: String| {
        out.push(Violation {
            file: file.to_path_buf(),
            line: t.line,
            col: t.col,
            rule,
            message,
        });
    };

    for (idx, tok) in toks.iter().enumerate() {
        match &tok.kind {
            TokKind::Ident(name) => {
                // unsafe: everywhere, tests included.
                if name == "unsafe" {
                    push(
                        &mut out,
                        tok,
                        Rule::UnsafeCode,
                        "`unsafe` is forbidden across the workspace".to_string(),
                    );
                }

                // Wall-clock types: all crates except bench and obs
                // (span timers are the obs crate's whole purpose).
                if WALL_CLOCK_TYPES.contains(&name.as_str())
                    && !scope.bench_crate
                    && !scope.obs_crate
                {
                    push(
                        &mut out,
                        tok,
                        Rule::WallClock,
                        format!(
                            "`{name}` names wall-clock time outside the bench harness; \
                             scheme decisions must be timing-oblivious (Principle 2)"
                        ),
                    );
                }

                // Panic-free framework code — and the experiment
                // binaries, which must exit nonzero with a diagnostic
                // rather than unwind (their exit status is what CI and
                // the crash-recovery harnesses observe).
                if (scope.panic_free_crate || scope.bench_bin)
                    && (config.include_tests || !is_test(idx))
                {
                    let next_is =
                        |c: char| toks.get(idx + 1).map(|t| &t.kind) == Some(&TokKind::Punct(c));
                    let prev_is_dot = idx > 0 && toks[idx - 1].kind == TokKind::Punct('.');
                    if PANIC_METHODS.contains(&name.as_str()) && prev_is_dot && next_is('(') {
                        push(
                            &mut out,
                            tok,
                            Rule::PanicFree,
                            format!(
                                "`.{name}(…)` in non-test framework code; route the failure \
                                 through a typed error instead"
                            ),
                        );
                    }
                    if PANIC_MACROS.contains(&name.as_str()) && next_is('!') {
                        push(
                            &mut out,
                            tok,
                            Rule::PanicFree,
                            format!("`{name}!` in non-test framework code; return a typed error"),
                        );
                    }
                }

                // Raw persistence outside the durable crate: the token
                // pairs `File::create` / `fs::rename` / `fs::write`.
                // The obs crate's file sink is a best-effort diagnostic
                // stream, not durable state.
                if !scope.durable_crate
                    && !scope.obs_crate
                    && (config.include_tests || !is_test(idx))
                    && toks.get(idx + 1).map(|t| &t.kind) == Some(&TokKind::Punct(':'))
                    && toks.get(idx + 2).map(|t| &t.kind) == Some(&TokKind::Punct(':'))
                {
                    let callee = match toks.get(idx + 3).map(|t| &t.kind) {
                        Some(TokKind::Ident(callee)) => Some(callee.as_str()),
                        _ => None,
                    };
                    let raw = (name == "File" && callee == Some("create"))
                        || (name == "fs" && (callee == Some("rename") || callee == Some("write")));
                    if raw {
                        push(
                            &mut out,
                            tok,
                            Rule::RawPersist,
                            format!(
                                "`{name}::{}` bypasses the crash-consistency layer; persist \
                                 through `untangle_durable` (atomic_write / Wal / LineLog / Slot)",
                                callee.unwrap_or_default()
                            ),
                        );
                    }
                }

                // Raw stderr diagnostics in crates that must route
                // through the obs sink (diagnostic severity: reported,
                // never a gate failure).
                if name == "eprintln"
                    && scope.obs_sink_crate
                    && !scope.obs_crate
                    && (config.include_tests || !is_test(idx))
                    && toks.get(idx + 1).map(|t| &t.kind) == Some(&TokKind::Punct('!'))
                {
                    push(
                        &mut out,
                        tok,
                        Rule::Eprintln,
                        "`eprintln!` bypasses the obs sink; use `untangle_obs::diag!` so the \
                         message survives `UNTANGLE_OBS=json` runs"
                            .to_string(),
                    );
                }

                // assert_eq!/assert_ne! where a top-level operand *is*
                // a bare float literal — `assert_eq!(x, 0.5)` is an
                // exact float comparison, while float literals nested
                // in sub-expressions (`a.gate(1.0)`, `0.0f64.to_bits()`)
                // are operand inputs, not equality operands.
                if (name == "assert_eq" || name == "assert_ne")
                    && (config.include_tests || !is_test(idx))
                    && toks.get(idx + 1).map(|t| &t.kind) == Some(&TokKind::Punct('!'))
                {
                    let mut j = idx + 2;
                    let mut depth = 0usize;
                    // Tokens of the current depth-1 operand segment.
                    let mut segment: Vec<usize> = Vec::new();
                    let mut bare_floats: Vec<usize> = Vec::new();
                    let flush = |segment: &mut Vec<usize>, bare: &mut Vec<usize>| {
                        if let [only] = segment[..] {
                            if toks[only].kind == TokKind::Float {
                                bare.push(only);
                            }
                        }
                        segment.clear();
                    };
                    while j < toks.len() {
                        match toks[j].kind {
                            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => {
                                depth += 1;
                                if depth > 1 {
                                    segment.push(j);
                                }
                            }
                            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                                if depth <= 1 {
                                    break;
                                }
                                depth -= 1;
                                if depth > 1 {
                                    segment.push(j);
                                }
                            }
                            TokKind::Punct(',') if depth == 1 => {
                                flush(&mut segment, &mut bare_floats);
                            }
                            _ if depth >= 1 => segment.push(j),
                            _ => {}
                        }
                        j += 1;
                    }
                    flush(&mut segment, &mut bare_floats);
                    for fj in bare_floats {
                        push(
                            &mut out,
                            &toks[fj],
                            Rule::FloatEq,
                            format!(
                                "`{name}!` compares a float literal exactly; use a tolerance \
                                 or compare `to_bits()`"
                            ),
                        );
                    }
                }
            }
            // `==` / `!=` adjacent to a float literal.
            TokKind::Punct(c @ ('=' | '!'))
                if toks.get(idx + 1).map(|t| &t.kind) == Some(&TokKind::Punct('=')) =>
            {
                // Skip the trailing `=` of `==`/`<=`/`>=`/`!=` so each
                // operator is inspected once.
                let prev_punct = idx > 0
                    && matches!(
                        toks[idx - 1].kind,
                        TokKind::Punct('=')
                            | TokKind::Punct('!')
                            | TokKind::Punct('<')
                            | TokKind::Punct('>')
                    );
                if prev_punct || (!config.include_tests && is_test(idx)) {
                    continue;
                }
                let neighbor_float = (idx > 0 && toks[idx - 1].kind == TokKind::Float)
                    || toks.get(idx + 2).map(|t| &t.kind) == Some(&TokKind::Float);
                if neighbor_float {
                    let op = if *c == '=' { "==" } else { "!=" };
                    push(
                        &mut out,
                        tok,
                        Rule::FloatEq,
                        format!(
                            "float literal compared with `{op}`; use a tolerance or an exact \
                             bit-pattern comparison"
                        ),
                    );
                }
            }
            _ => {}
        }
    }
    out
}

/// Recursively lints every `.rs` file under `root/crates`, `root/src`,
/// `root/tests`, and `root/examples`.
///
/// # Errors
///
/// Propagates I/O failures reading the tree (unreadable files are
/// reported, not skipped, so a truncated scan can't pass as clean).
pub fn lint_workspace(root: &Path, config: &LintConfig) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut out = Vec::new();
    for file in files {
        let src = fs::read_to_string(&file)?;
        let rel = file.strip_prefix(root).unwrap_or(&file);
        let scope = FileScope::of(rel);
        out.extend(lint_source(rel, &src, scope, config));
    }
    Ok(out)
}

pub(crate) fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Build artifacts and VCS metadata are not source.
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scope_core() -> FileScope {
        FileScope::of(Path::new("crates/core/src/example.rs"))
    }

    fn lint(src: &str, scope: FileScope) -> Vec<Violation> {
        lint_source(Path::new("x.rs"), src, scope, &LintConfig::default())
    }

    #[test]
    fn flags_unwrap_and_panic_in_core_non_test_code() {
        let src = r#"
fn f(x: Option<u32>) -> u32 { x.unwrap() }
fn g() { panic!("boom"); }
"#;
        let v = lint(src, scope_core());
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == Rule::PanicFree));
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn skips_test_regions_and_unwrap_or_lookalikes() {
        let src = r#"
fn ok(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); panic!("fine in tests"); }
}
"#;
        assert!(lint(src, scope_core()).is_empty());
    }

    #[test]
    fn include_tests_extends_the_panic_sweep() {
        let src = "#[test]\nfn t() { Some(1).unwrap(); }\n";
        let cfg = LintConfig {
            include_tests: true,
        };
        let v = lint_source(Path::new("x.rs"), src, scope_core(), &cfg);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::PanicFree);
    }

    #[test]
    fn flags_float_equality_but_not_integer_or_bits() {
        let src = r#"
fn bad(x: f64) -> bool { x == 0.5 }
fn also_bad(x: f64) -> bool { 1.0 != x }
fn fine(x: u64) -> bool { x == 5 }
fn bits(x: f64, y: f64) -> bool { x.to_bits() == y.to_bits() }
fn ranges() -> usize { (0..9).len() }
fn tuple(t: (f64, f64)) -> f64 { t.0 }
fn method() -> u64 { 5u64.max(3) }
"#;
        let v = lint(src, scope_core());
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|v| v.rule == Rule::FloatEq));
    }

    #[test]
    fn flags_assert_eq_with_float_literal() {
        let src = "fn f(x: f64) { assert_eq!(x, 0.0); }\n";
        let v = lint(src, scope_core());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::FloatEq);
        // Comparisons against integers are untouched.
        let ok = "fn f(x: u64) { assert_eq!(x, 3); }\n";
        assert!(lint(ok, scope_core()).is_empty());
        // The sanctioned fixes stay legal: bit-pattern comparison and
        // floats nested inside operand sub-expressions.
        let bits = "fn f(x: f64) { assert_eq!(x.to_bits(), 0.0f64.to_bits()); }\n";
        assert!(
            lint(bits, scope_core()).is_empty(),
            "{:?}",
            lint(bits, scope_core())
        );
        let nested = "fn f(g: fn(f64) -> u32) { assert_eq!(g(1.0), 7); }\n";
        assert!(lint(nested, scope_core()).is_empty());
        // A float message argument is still an operand-level literal.
        let msg = "fn f(x: f64) { assert_eq!(x, 0.5, \"expected half\"); }\n";
        assert_eq!(lint(msg, scope_core()).len(), 1);
    }

    #[test]
    fn flags_panics_in_experiment_binaries_but_not_bench_library() {
        let src = "fn main() { let v: Option<u32> = None; v.expect(\"boom\"); }\n";
        let bin = lint(
            src,
            FileScope::of(Path::new("crates/bench/src/bin/exp_mixes.rs")),
        );
        assert_eq!(bin.len(), 1, "{bin:?}");
        assert_eq!(bin[0].rule, Rule::PanicFree);
        let lib = lint(src, FileScope::of(Path::new("crates/bench/src/report.rs")));
        assert!(lib.is_empty(), "{lib:?}");
    }

    #[test]
    fn flags_wall_clock_outside_bench_only() {
        let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n";
        let core = lint(src, scope_core());
        assert_eq!(core.len(), 2, "{core:?}");
        assert!(core.iter().all(|v| v.rule == Rule::WallClock));
        let bench = lint(src, FileScope::of(Path::new("crates/bench/src/harness.rs")));
        assert!(bench.is_empty());
        // The obs crate owns the span clock, so it is exempt too.
        let obs = lint(src, FileScope::of(Path::new("crates/obs/src/lib.rs")));
        assert!(obs.is_empty(), "{obs:?}");
    }

    #[test]
    fn flags_eprintln_in_obs_sink_crates_as_diagnostic() {
        let src = "fn f() { eprintln!(\"warning: {}\", 3); }\n";
        for krate in ["core", "info", "sim"] {
            let scope = FileScope::of(Path::new(&format!("crates/{krate}/src/x.rs")));
            let v = lint(src, scope);
            assert_eq!(v.len(), 1, "{krate}: {v:?}");
            assert_eq!(v[0].rule, Rule::Eprintln);
            assert_eq!(v[0].severity(), Severity::Diagnostic);
        }
        // bench binaries, the obs crate itself, and test code are exempt.
        for path in [
            "crates/bench/src/bin/exp_mixes.rs",
            "crates/obs/src/lib.rs",
            "crates/core/tests/props.rs",
        ] {
            let v = lint(src, FileScope::of(Path::new(path)));
            assert!(v.is_empty(), "{path}: {v:?}");
        }
        // In-file test regions are exempt unless include_tests is on.
        let test_src = "#[cfg(test)]\nmod tests {\n fn t() { eprintln!(\"x\"); }\n}\n";
        let core = FileScope::of(Path::new("crates/core/src/x.rs"));
        assert!(lint(test_src, core).is_empty());
        let cfg = LintConfig {
            include_tests: true,
        };
        assert_eq!(
            lint_source(Path::new("x.rs"), test_src, core, &cfg).len(),
            1
        );
        // Lookalikes (`eprint!`, a bare ident) never trigger.
        let lookalike = "fn f() { eprint!(\"x\"); let eprintln = 1; let _ = eprintln; }\n";
        assert!(lint(lookalike, core).is_empty());
    }

    #[test]
    fn severities_split_gate_failures_from_diagnostics() {
        assert_eq!(Rule::Eprintln.severity(), Severity::Diagnostic);
        for rule in [
            Rule::PanicFree,
            Rule::FloatEq,
            Rule::WallClock,
            Rule::UnsafeCode,
            // Promoted from Diagnostic once crates/durable became the
            // sole owner of raw persistence.
            Rule::RawPersist,
        ] {
            assert_eq!(rule.severity(), Severity::Error, "{rule}");
        }
        assert_eq!(Severity::Error.name(), "error");
        assert_eq!(Severity::Diagnostic.name(), "diagnostic");
    }

    #[test]
    fn flags_raw_persistence_outside_the_durable_crate() {
        let src = "fn f() {\n let _ = std::fs::File::create(\"x\");\n \
                   std::fs::rename(\"a\", \"b\").ok();\n std::fs::write(\"c\", b\"d\").ok();\n}\n";
        let v = lint(src, scope_core());
        assert_eq!(v.len(), 3, "{v:?}");
        assert!(v.iter().all(|v| v.rule == Rule::RawPersist));
        assert!(v.iter().all(|v| v.severity() == Severity::Error));
        // The durable crate is the sanctioned owner; the obs crate's
        // sink file is a diagnostic stream, not durable state; test
        // code builds fixtures however it likes.
        for path in [
            "crates/durable/src/atomic.rs",
            "crates/obs/src/lib.rs",
            "crates/serve/tests/crash_recovery.rs",
        ] {
            let v = lint(src, FileScope::of(Path::new(path)));
            assert!(v.is_empty(), "{path}: {v:?}");
        }
        // Lookalikes never trigger: other `create`/`rename` callees,
        // method calls, and bare idents.
        let ok = "fn f() { let _ = Dir::create(\"x\"); map.rename(1); \
                  let rename = 2; let _ = rename; fs::read(\"x\").ok(); }\n";
        assert!(
            lint(ok, scope_core()).is_empty(),
            "{:?}",
            lint(ok, scope_core())
        );
    }

    #[test]
    fn flags_unsafe_even_in_tests() {
        let src = "#[test]\nfn t() { let p = 0u8; let _ = unsafe { *(&p as *const u8) }; }\n";
        let v = lint(src, scope_core());
        assert!(v.iter().any(|v| v.rule == Rule::UnsafeCode), "{v:?}");
    }

    #[test]
    fn comments_strings_and_lifetimes_never_trigger() {
        let src = r##"
// x.unwrap() and panic! in a comment
/* nested /* block */ with unsafe and Instant */
fn f<'a>(s: &'a str) -> &'a str { s }
fn g() -> String { String::from("call .unwrap() or panic! == 0.5 unsafe Instant") }
fn raw() -> &'static str { r#"Instant::now() == 1.0 unsafe"# }
fn ch() -> char { 'x' }
fn esc() -> char { '\n' }
"##;
        assert!(lint(src, scope_core()).is_empty());
    }

    #[test]
    fn exponent_and_suffix_literals_are_floats() {
        let src = "fn f(x: f64) -> bool { x == 1e-9 || x == 2f64 }\n";
        let v = lint(src, scope_core());
        assert_eq!(v.len(), 2, "{v:?}");
        // Hex literals with an `E` digit are integers.
        let hex = "fn f(x: u64) -> bool { x == 0xE }\n";
        assert!(lint(hex, scope_core()).is_empty());
    }

    #[test]
    fn scope_detection() {
        assert!(FileScope::of(Path::new("crates/info/src/dist.rs")).panic_free_crate);
        assert!(!FileScope::of(Path::new("crates/sim/src/stats.rs")).panic_free_crate);
        assert!(FileScope::of(Path::new("crates/bench/src/report.rs")).bench_crate);
        // The experiment binaries are panic-free; bench library code is
        // not in scope (its tests use expect freely).
        assert!(FileScope::of(Path::new("crates/bench/src/bin/exp_mixes.rs")).bench_bin);
        assert!(!FileScope::of(Path::new("crates/bench/src/report.rs")).bench_bin);
        assert!(!FileScope::of(Path::new("crates/bench/benches/kernels.rs")).bench_bin);
        assert!(FileScope::of(Path::new("crates/core/tests/props.rs")).test_file);
        assert!(FileScope::of(Path::new("examples/quickstart.rs")).test_file);
        // The panic rule never applies outside src of the named crates.
        assert!(!FileScope::of(Path::new("crates/core/tests/props.rs")).panic_free_crate);
        // The obs crate: panic-free, wall-clock-exempt, not an obs-sink
        // target itself.
        let obs = FileScope::of(Path::new("crates/obs/src/lib.rs"));
        assert!(obs.panic_free_crate && obs.obs_crate && !obs.obs_sink_crate);
        // The obs-sink discipline covers exactly core/info/sim src.
        assert!(FileScope::of(Path::new("crates/sim/src/stats.rs")).obs_sink_crate);
        assert!(!FileScope::of(Path::new("crates/bench/src/parallel.rs")).obs_sink_crate);
        assert!(!FileScope::of(Path::new("crates/analysis/src/lint.rs")).obs_sink_crate);
        // Raw persistence is the durable crate's exclusive business.
        assert!(FileScope::of(Path::new("crates/durable/src/wal.rs")).durable_crate);
        assert!(!FileScope::of(Path::new("crates/serve/src/durable.rs")).durable_crate);
    }

    #[test]
    fn violations_render_as_file_line_col() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let v = lint(src, scope_core());
        let rendered = v[0].to_string();
        assert!(rendered.starts_with("x.rs:1:"), "{rendered}");
        assert!(rendered.contains("panic-free"), "{rendered}");
    }

    // --- Region-skipping regression tests ---------------------------
    // Edge cases that previously mis-sized the `#[cfg(test)]` skip
    // region and produced spurious (or missing) diagnostics.

    #[test]
    fn braceless_cfg_test_item_does_not_swallow_the_next_item() {
        // `#[cfg(test)]` on a brace-less item used to extend the skip
        // region over the *next* item's braces, hiding its violations.
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\n\
                   fn live(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let v = lint(src, scope_core());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::PanicFree);
    }

    #[test]
    fn cfg_all_test_modules_are_skipped() {
        // `#[cfg(all(test, feature = "x"))]` is test-only code; it used
        // to be treated as live because only the bare `#[cfg(test)]`
        // spelling was recognized.
        let src = "#[cfg(all(test, feature = \"slow\"))]\nmod tests {\n \
                   fn t() { Some(1).unwrap(); }\n}\n";
        assert!(lint(src, scope_core()).is_empty());
        // `#[cfg(any(test, doctest))]` likewise.
        let any = "#[cfg(any(test, doctest))]\nmod tests {\n fn t() { panic!(\"x\"); }\n}\n";
        assert!(lint(any, scope_core()).is_empty());
    }

    #[test]
    fn cfg_not_test_code_stays_live() {
        // `not(test)` means the item is compiled into the real build —
        // it must NOT be treated as a test region.
        let src = "#[cfg(not(test))]\nfn live(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let v = lint(src, scope_core());
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn stacked_attributes_extend_the_test_region() {
        // Attributes between `#[cfg(test)]` and the item body must not
        // terminate the region scan.
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n \
                   fn t() { Some(1).unwrap(); }\n}\n";
        assert!(lint(src, scope_core()).is_empty());
    }

    #[test]
    fn nested_mod_inside_cfg_test_does_not_end_the_region_early() {
        // A nested `mod` inside a `#[cfg(test)]` module must not close
        // the outer skip region at the *inner* closing brace.
        let src = "#[cfg(test)]\nmod tests {\n mod inner { fn a() { Some(1).unwrap(); } }\n \
                   fn after_inner() { panic!(\"still test code\"); }\n}\n\
                   fn live(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let v = lint(src, scope_core());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 6, "{v:?}");
    }

    #[test]
    fn raw_strings_with_region_lookalikes_do_not_confuse_the_scanner() {
        // Raw strings containing `#[cfg(test)]`, braces, or quote marks
        // are literal data, not code: the scanner must neither open a
        // skip region from them nor lose brace balance.
        let src = "fn a() -> &'static str { r##\"#[cfg(test)] mod x { \"## }\n\
                   fn b() -> &'static str { r#\"}\"# }\n\
                   fn live(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let v = lint(src, scope_core());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3, "{v:?}");
    }

    #[test]
    fn string_tokens_carry_their_unescaped_content() {
        let toks = tokenize("let s = \"a\\nb\"; let r = r#\"c\"d\"#;");
        let strs: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, ["a\nb", "c\"d"]);
    }
}
