//! Non-interference certification by secret-equivalence-class replay.
//!
//! §3.2's ground-truth recipe, specialized to a *certificate*: fix the
//! public part of the input (the workload mix — one **secret-
//! equivalence class**), enumerate the victim's secret within the
//! class, and run the scheme once per secret. A scheme is action-leak
//! free (§5.1) iff the resizing-action trace is constant within every
//! class — the attacker-visible actions then carry zero bits about the
//! secret.
//!
//! Two independent detectors feed the verdict:
//!
//! * the **taint audit** ([`untangle_core::taint::audit`]): every
//!   secret-labeled value that crossed into a resizing decision did so
//!   through a named `declassify` site, and the capture records them.
//!   This is the *sound* detector — it flags the flow even when the
//!   realized traces happen to coincide.
//! * **trace divergence**: action sequences that differ across secrets
//!   within a class, plus the measured within-class action entropy via
//!   [`untangle_core::enumerate::measure_leakage`]. This is the
//!   *refuting* detector — divergence proves leakage, agreement alone
//!   proves nothing.
//!
//! A scheme certifies [`Verdict::ActionLeakFree`] only when both
//! detectors are silent; otherwise the certificate names the exact
//! declassification sites, matching the paper's Fig. 2 edges ① (metric
//! demand on all accesses) and ③ (wall-clock schedule timing).

use untangle_core::enumerate::measure_leakage;
use untangle_core::runner::{Runner, RunnerConfig};
use untangle_core::scheme::{DomainTier, SchemeKind};
use untangle_core::taint::audit;
use untangle_core::UntangleError;
use untangle_trace::synth::{CryptoConfig, CryptoModel, WorkingSetConfig, WorkingSetModel};
use untangle_trace::TraceSource;

use std::collections::BTreeMap;

/// Attacker time resolution (cycles per observation unit) used when
/// quantizing traces for the within-class entropy measurement.
const RESOLUTION_CYCLES: f64 = 10_000.0;

/// How the certifier builds its secret-equivalence classes.
#[derive(Debug, Clone)]
pub struct CertifyConfig {
    /// Number of enumerated secrets per class (secret values
    /// `0..secrets`).
    pub secrets: u64,
    /// One public workload per class: the co-running working-set size
    /// in bytes. Each entry fixes the public input of one class.
    pub class_working_sets: Vec<u64>,
    /// Trace-model seed (shared across secrets so only the secret
    /// varies within a class).
    pub seed: u64,
}

impl Default for CertifyConfig {
    fn default() -> Self {
        Self {
            secrets: 3,
            class_working_sets: vec![512 << 10, 3 << 20],
            seed: 11,
        }
    }
}

/// The certified property, or its failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// All classes kept constant action traces and no secret-labeled
    /// value was declassified into a resizing decision.
    ActionLeakFree,
    /// Secret data reached the resizing decision; the certificate
    /// lists the declassification sites and/or divergent classes.
    LeakSites,
}

impl Verdict {
    /// Stable string form used in the JSON certificate.
    pub const fn name(self) -> &'static str {
        match self {
            Verdict::ActionLeakFree => "ActionLeakFree",
            Verdict::LeakSites => "LeakSites",
        }
    }
}

/// A named taint-audit site with its hit count, summed over all runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteRecord {
    /// The `untangle_core::taint::sites` name.
    pub site: String,
    /// Total declassifications (or violations) recorded at the site.
    pub hits: u64,
}

/// Machine-readable non-interference certificate for one scheme.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// Scheme display name (`UNTANGLE`, `TIME`, …).
    pub scheme: String,
    /// The overall verdict.
    pub verdict: Verdict,
    /// Number of secret-equivalence classes checked.
    pub classes: usize,
    /// Secrets enumerated per class.
    pub secrets_per_class: u64,
    /// Classes whose action traces differed across secrets.
    pub divergent_classes: usize,
    /// Largest within-class action leakage measured (bits; §5.1).
    pub max_action_bits: f64,
    /// Declassification sites through which secret data flowed into
    /// decisions, with hit counts (empty for `ActionLeakFree`).
    pub declassified_sites: Vec<SiteRecord>,
    /// Fail-closed rejections recorded by `require_public` (these are
    /// *blocked* flows, reported for visibility — they are not leaks).
    pub violations: Vec<SiteRecord>,
}

impl Certificate {
    /// Renders the certificate as a JSON object (workspace-local
    /// dialect: objects, arrays, strings, finite numbers).
    pub fn to_json(&self) -> String {
        let sites = |records: &[SiteRecord]| {
            let items: Vec<String> = records
                .iter()
                .map(|r| {
                    format!(
                        "{{\"site\": {}, \"hits\": {}}}",
                        json_string(&r.site),
                        r.hits
                    )
                })
                .collect();
            format!("[{}]", items.join(", "))
        };
        format!(
            "{{\"scheme\": {}, \"verdict\": {}, \"classes\": {}, \
             \"secrets_per_class\": {}, \"divergent_classes\": {}, \
             \"max_action_bits\": {}, \"declassified_sites\": {}, \
             \"violations\": {}}}",
            json_string(&self.scheme),
            json_string(self.verdict.name()),
            self.classes,
            self.secrets_per_class,
            self.divergent_classes,
            json_number(self.max_action_bits),
            sites(&self.declassified_sites),
            sites(&self.violations),
        )
    }

    /// Builds a certificate from captured taint-audit logs alone — the
    /// *sound-detector half* of [`certify_scheme`], for systems (the
    /// serve daemon's live shards) whose inputs arrive over a wire and
    /// cannot be re-enumerated per secret. The verdict is
    /// [`Verdict::ActionLeakFree`] iff no secret value was declassified
    /// into a decision; `require_public` refusals are *blocked* flows
    /// and are reported without failing the verdict. Because the
    /// trace-divergence refutation cannot run, the class/entropy fields
    /// are zero: this certificate asserts the audited-flow property
    /// only.
    pub fn from_audit(scheme: &str, logs: &[audit::AuditLog]) -> Certificate {
        let mut declassified: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut violations: BTreeMap<&'static str, u64> = BTreeMap::new();
        for log in logs {
            for s in &log.declassified {
                *declassified.entry(s.site).or_insert(0) += s.hits;
            }
            for s in &log.violations {
                *violations.entry(s.site).or_insert(0) += s.hits;
            }
        }
        let to_records = |m: BTreeMap<&'static str, u64>| {
            m.into_iter()
                .map(|(site, hits)| SiteRecord {
                    site: site.to_string(),
                    hits,
                })
                .collect::<Vec<_>>()
        };
        let verdict = if declassified.is_empty() {
            Verdict::ActionLeakFree
        } else {
            Verdict::LeakSites
        };
        Certificate {
            scheme: scheme.to_string(),
            verdict,
            classes: 0,
            secrets_per_class: 0,
            divergent_classes: 0,
            max_action_bits: 0.0,
            declassified_sites: to_records(declassified),
            violations: to_records(violations),
        }
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Builds the mixed trace source for one (class, secret) cell: a
/// crypto region whose footprint scales with the secret, interleaved
/// with the class's fixed public working set.
fn class_source(working_set_bytes: u64, secret: u64, seed: u64) -> Box<dyn TraceSource> {
    let crypto = CryptoModel::new(
        CryptoConfig {
            secret,
            secret_scales_footprint: true,
            region_base: untangle_trace::LineAddr::new(1 << 40),
            ..CryptoConfig::default()
        },
        seed,
    );
    let public = WorkingSetModel::new(
        WorkingSetConfig {
            working_set_bytes,
            ..WorkingSetConfig::default()
        },
        seed,
    );
    Box::new(untangle_trace::source::Interleave::new(
        crypto, 2_000, public, 20_000,
    ))
}

/// Certifies one scheme against the configured equivalence classes.
///
/// # Errors
///
/// * [`UntangleError::InvalidConfig`] — `SHARED` is rejected up front:
///   with no partitions there are no resizing actions to certify, so
///   action-leakage certification is out of scope for it (its leakage
///   is through contention, not resizing). Also returned for an empty
///   class list or fewer than two secrets (no class to compare).
/// * Any simulator or entropy-measurement error, converted through
///   `UntangleError`.
pub fn certify_scheme(
    kind: SchemeKind,
    config: &CertifyConfig,
) -> Result<Certificate, UntangleError> {
    if kind == SchemeKind::Shared {
        return Err(UntangleError::InvalidConfig(
            "SHARED has no partitions to resize, so action-leakage \
             certification is out of scope (its leakage channel is \
             contention, not resizing actions)"
                .to_string(),
        ));
    }
    if config.class_working_sets.is_empty() {
        return Err(UntangleError::InvalidConfig(
            "certifier needs at least one secret-equivalence class".to_string(),
        ));
    }
    if config.secrets < 2 {
        return Err(UntangleError::InvalidConfig(
            "certifier needs at least two secrets per class to compare".to_string(),
        ));
    }

    let mut declassified: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut violations: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut divergent_classes = 0usize;
    let mut max_action_bits = 0.0f64;

    for &working_set in &config.class_working_sets {
        // One run per enumerated secret, audited. Every run in the
        // class shares the public input; only the secret varies.
        let mut class_traces = Vec::new();
        for secret in 0..config.secrets {
            let (report, log) = audit::capture(|| -> Result<_, UntangleError> {
                let mut sources = vec![class_source(working_set, secret, config.seed)];
                let mut runner_config = RunnerConfig::test_scale(kind, 1);
                if kind == SchemeKind::SecDcp {
                    // SecDCP needs a public-tier domain to drive
                    // resizing; the secret-bearing domain is Sensitive.
                    sources.push(Box::new(WorkingSetModel::new(
                        WorkingSetConfig::default(),
                        config.seed,
                    )));
                    runner_config.tiers = Some(vec![DomainTier::Sensitive, DomainTier::Public]);
                }
                Ok(Runner::new(runner_config, sources)?.run())
            });
            let report = report?;
            for site in log.declassified {
                *declassified.entry(site.site).or_insert(0) += site.hits;
            }
            for site in log.violations {
                *violations.entry(site.site).or_insert(0) += site.hits;
            }
            class_traces.push(
                report
                    .domains
                    .into_iter()
                    .map(|d| d.trace)
                    .collect::<Vec<_>>(),
            );
        }

        // Within-class constancy: every domain's action sequence must
        // match the first secret's, for every enumerated secret.
        let baseline: Vec<_> = class_traces
            .first()
            .map(|doms| doms.iter().map(|t| t.action_sequence()).collect())
            .unwrap_or_default();
        let diverged = class_traces
            .iter()
            .any(|doms| doms.iter().map(|t| t.action_sequence()).collect::<Vec<_>>() != baseline);
        if diverged {
            divergent_classes += 1;
        }

        // Quantify the within-class action leakage (uniform secrets):
        // H of the realized action-trace ensemble, per §5.1. Taken per
        // domain; the certificate reports the worst case.
        let probs = vec![1.0 / config.secrets as f64; config.secrets as usize];
        let domains = class_traces.first().map(Vec::len).unwrap_or(0);
        // `d` picks the domain (inner index) while the enumerated input
        // `i` (outer index) is supplied by `measure_leakage`, so an
        // iterator over `class_traces` cannot replace this loop.
        #[allow(clippy::needless_range_loop)]
        for d in 0..domains {
            let breakdown =
                measure_leakage(&probs, RESOLUTION_CYCLES, |i| class_traces[i][d].clone())?;
            max_action_bits = max_action_bits.max(breakdown.action_bits);
        }
    }

    let to_records = |m: BTreeMap<&'static str, u64>| {
        m.into_iter()
            .map(|(site, hits)| SiteRecord {
                site: site.to_string(),
                hits,
            })
            .collect::<Vec<_>>()
    };
    let declassified_sites = to_records(declassified);
    let violations = to_records(violations);
    let verdict = if declassified_sites.is_empty() && divergent_classes == 0 {
        Verdict::ActionLeakFree
    } else {
        Verdict::LeakSites
    };
    Ok(Certificate {
        scheme: kind.name().to_string(),
        verdict,
        classes: config.class_working_sets.len(),
        secrets_per_class: config.secrets,
        divergent_classes,
        max_action_bits,
        declassified_sites,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use untangle_core::taint::sites;

    fn quick_config() -> CertifyConfig {
        CertifyConfig {
            secrets: 2,
            class_working_sets: vec![3 << 20],
            seed: 11,
        }
    }

    #[test]
    fn from_audit_distills_captured_logs() {
        use untangle_core::{Label, Labeled};
        let ((), clean_log) = audit::capture(|| {
            let v = Labeled::new(3u64, Label::Secret);
            // A refused flow is fail-closed, not a leak.
            assert!(v.require_public(sites::SERVE_TELEMETRY_INPUT).is_err());
        });
        let cert = Certificate::from_audit("UNTANGLE-SERVE", &[clean_log.clone(), clean_log]);
        assert_eq!(cert.verdict, Verdict::ActionLeakFree);
        assert!(cert.declassified_sites.is_empty());
        assert_eq!(cert.violations.len(), 1);
        assert_eq!(cert.violations[0].site, sites::SERVE_TELEMETRY_INPUT);
        assert_eq!(cert.violations[0].hits, 2, "logs merge additively");

        let ((), leaky_log) = audit::capture(|| {
            let v = Labeled::new(3u64, Label::Secret);
            let _ = v.declassify(sites::CONVENTIONAL_METRIC);
        });
        let cert = Certificate::from_audit("TIME", &[leaky_log]);
        assert_eq!(cert.verdict, Verdict::LeakSites);
        assert_eq!(cert.declassified_sites[0].site, sites::CONVENTIONAL_METRIC);
    }

    #[test]
    fn static_certifies_action_leak_free() {
        let cert = certify_scheme(SchemeKind::Static, &quick_config()).unwrap();
        assert_eq!(cert.verdict, Verdict::ActionLeakFree, "{cert:?}");
        assert!(cert.declassified_sites.is_empty());
        assert_eq!(cert.divergent_classes, 0);
        assert!(cert.max_action_bits.abs() < 1e-9);
    }

    #[test]
    fn untangle_certifies_action_leak_free() {
        let cert = certify_scheme(SchemeKind::Untangle, &quick_config()).unwrap();
        assert_eq!(cert.verdict, Verdict::ActionLeakFree, "{cert:?}");
        assert!(
            cert.declassified_sites.is_empty(),
            "Untangle's decision path must not declassify: {:?}",
            cert.declassified_sites
        );
        assert_eq!(cert.divergent_classes, 0);
    }

    #[test]
    fn time_is_flagged_with_exact_declassify_sites() {
        let cert = certify_scheme(SchemeKind::Time, &quick_config()).unwrap();
        assert_eq!(cert.verdict, Verdict::LeakSites, "{cert:?}");
        let names: Vec<&str> = cert
            .declassified_sites
            .iter()
            .map(|s| s.site.as_str())
            .collect();
        assert!(
            names.contains(&sites::TIME_SCHEDULE_WALL_CLOCK),
            "wall-clock schedule site missing: {names:?}"
        );
        assert!(
            names.contains(&sites::CONVENTIONAL_METRIC),
            "all-accesses metric site missing: {names:?}"
        );
        assert!(cert.declassified_sites.iter().all(|s| s.hits > 0));
    }

    #[test]
    fn secdcp_is_flagged_with_exact_declassify_sites() {
        let cert = certify_scheme(SchemeKind::SecDcp, &quick_config()).unwrap();
        assert_eq!(cert.verdict, Verdict::LeakSites, "{cert:?}");
        let names: Vec<&str> = cert
            .declassified_sites
            .iter()
            .map(|s| s.site.as_str())
            .collect();
        assert!(
            names.contains(&sites::TIME_SCHEDULE_WALL_CLOCK),
            "SecDCP's public-tier wall-clock schedule should surface: {names:?}"
        );
    }

    #[test]
    fn shared_is_rejected_out_of_scope() {
        let err = certify_scheme(SchemeKind::Shared, &quick_config()).unwrap_err();
        match err {
            UntangleError::InvalidConfig(msg) => {
                assert!(msg.contains("out of scope"), "{msg}");
                assert!(msg.contains("SHARED"), "{msg}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let mut cfg = quick_config();
        cfg.class_working_sets.clear();
        assert!(matches!(
            certify_scheme(SchemeKind::Static, &cfg),
            Err(UntangleError::InvalidConfig(_))
        ));
        let mut cfg = quick_config();
        cfg.secrets = 1;
        assert!(matches!(
            certify_scheme(SchemeKind::Static, &cfg),
            Err(UntangleError::InvalidConfig(_))
        ));
    }

    #[test]
    fn certificate_json_roundtrips_the_fields() {
        let cert = Certificate {
            scheme: "TIME".to_string(),
            verdict: Verdict::LeakSites,
            classes: 2,
            secrets_per_class: 3,
            divergent_classes: 1,
            max_action_bits: 1.5,
            declassified_sites: vec![SiteRecord {
                site: sites::TIME_SCHEDULE_WALL_CLOCK.to_string(),
                hits: 42,
            }],
            violations: vec![],
        };
        let json = cert.to_json();
        assert!(json.contains("\"verdict\": \"LeakSites\""), "{json}");
        assert!(json.contains("\"max_action_bits\": 1.5"), "{json}");
        assert!(
            json.contains("\"site\": \"schedule::time::wall_clock\", \"hits\": 42"),
            "{json}"
        );
        // Balanced braces (cheap well-formedness check; the bench
        // crate's parser does the real round-trip in its own tests).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }
}
