//! Interprocedural forward taint dataflow and determinism analysis
//! (`untangle-flow`).
//!
//! # Lattice and model
//!
//! The secrecy lattice is the same two-point `Public ⊑ Secret` lattice
//! as `untangle_core::taint`; the analysis adds two orthogonal
//! determinism marks (hash-iteration order, wall-clock reads). A
//! [`Taint`] value tracks, per expression:
//!
//! * which of the enclosing function's **parameters** it derives from
//!   (a bitmask — the currency of the interprocedural summaries),
//! * whether it derives from a locally created **secret** source
//!   (`Labeled::secret(…)`, `.taint()`, or a call returning `Labeled`),
//! * whether it derives from **unordered iteration** over a
//!   `HashMap`/`HashSet`,
//! * whether it derives from a **wall-clock read** (`Instant::now` /
//!   `SystemTime::now`).
//!
//! # Summaries and fixpoint
//!
//! Each function gets a [`Summary`]: whether its return value is
//! secret (seeded from a `Labeled` return type), and per parameter
//! whether the function *sanitizes* it (passes it through
//! `declassify`/`require_public`/`public_value`), forwards it to its
//! return value, or lets it reach a **sink** — recording the local
//! source→sink step chain. Summaries are recomputed to a fixpoint
//! (bounded rounds), then a final reporting pass emits findings whose
//! chains concatenate across call edges, so a caller-side source is
//! reported with the full path through callees to the sink.
//!
//! # Rules
//!
//! * `secret-flow` — a secret-derived value reaches a sink (decision
//!   commit, serve output merge, durable write, process output, obs
//!   event) without passing `declassify()`/`require_public()`.
//! * `nondet-iter` — a value derived from unordered container
//!   iteration feeds an ordered output path without an intervening
//!   sort or order-insensitive fold.
//! * `nondet-time` — a wall-clock read flows to a sink outside the
//!   bench/obs crates (whose clocks are sanctioned).
//! * `unknown-declassify-site` — `declassify`/`require_public` is
//!   called with a literal site that is not in the `taint::sites`
//!   registry (variable site arguments are accepted: the registry is
//!   checked at runtime by the audit layer).
//!
//! Test regions and test files are skipped, mirroring the lint.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::{extract_calls, resolve_calls, Call, CallStyle};
use crate::lint::{TokKind, Token};
use crate::parse::Workspace;
use crate::report::{ChainStep, Finding};

/// Per-function dataflow summary.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Summary {
    /// The return value carries secret taint (seeded from a `Labeled`
    /// return type, extended when a body returns a secret-derived
    /// value).
    returns_secret: bool,
    /// Per parameter: passed through a sanitizer inside this function.
    sanitizes: Vec<bool>,
    /// Per parameter: reaches a sink un-sanitized; the chain holds the
    /// steps from this function's entry to the sink.
    to_sink: Vec<Option<Vec<ChainStep>>>,
    /// Per parameter: flows to the return value.
    to_return: Vec<bool>,
}

/// Taint of one expression during a body walk.
#[derive(Debug, Clone, Default)]
struct Taint {
    /// Bitmask of the enclosing function's parameters.
    params: u64,
    /// Locally originated secret, with its source chain.
    secret: Option<Vec<ChainStep>>,
    /// Unordered-iteration origin, with its source chain.
    nondet: Option<Vec<ChainStep>>,
    /// Wall-clock origin, with its source chain.
    time: Option<Vec<ChainStep>>,
}

impl Taint {
    fn is_empty(&self) -> bool {
        self.params == 0 && self.secret.is_none() && self.nondet.is_none() && self.time.is_none()
    }

    fn merge(&mut self, other: &Taint) {
        self.params |= other.params;
        if self.secret.is_none() {
            self.secret.clone_from(&other.secret);
        }
        if self.nondet.is_none() {
            self.nondet.clone_from(&other.nondet);
        }
        if self.time.is_none() {
            self.time.clone_from(&other.time);
        }
    }
}

/// Sink classes. Ordered-output sinks additionally gate the
/// determinism rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SinkKind {
    /// `DecisionCore`-style decision emission (`.commit(…)`).
    Decision,
    /// The serve engine's ordered output merge (`.ingest…(…)`).
    ServeMerge,
    /// A `crates/durable` write.
    Durable,
    /// `println!`-family process output.
    Stdout,
    /// An `untangle-obs` event.
    Obs,
}

impl SinkKind {
    /// Whether emission order is observable at this sink.
    fn ordered(self) -> bool {
        !matches!(self, SinkKind::Obs)
    }
}

const HASH_ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];
const SORT_METHODS: [&str; 6] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];
const ORDER_INSENSITIVE: [&str; 7] = ["sum", "count", "min", "max", "all", "any", "len"];
const MUTATING_METHODS: [&str; 7] = [
    "push",
    "push_str",
    "push_front",
    "push_back",
    "extend",
    "insert",
    "append",
];

/// Runs the full analysis over a parsed workspace and returns the
/// findings, sorted by position.
pub fn analyze_workspace(ws: &Workspace) -> Vec<Finding> {
    let mut file_calls: Vec<BTreeMap<usize, Call>> = Vec::with_capacity(ws.files.len());
    for (i, f) in ws.files.iter().enumerate() {
        let mut calls = extract_calls(&f.toks);
        resolve_calls(ws, i, &mut calls);
        file_calls.push(calls);
    }
    let mut summaries: Vec<Summary> = ws
        .fns
        .iter()
        .map(|f| Summary {
            returns_secret: f.returns_labeled,
            sanitizes: vec![false; f.params.len()],
            to_sink: vec![None; f.params.len()],
            to_return: vec![false; f.params.len()],
        })
        .collect();

    // Fixpoint over summaries: bounded rounds (the bound also caps
    // chain growth through recursive call cycles).
    for _round in 0..8 {
        let mut changed = false;
        for id in 0..ws.fns.len() {
            if ws.fns[id].is_test || ws.fns[id].body.is_none() {
                continue;
            }
            let (summary, _) = analyze_fn(ws, id, &file_calls, &summaries);
            if summary != summaries[id] {
                summaries[id] = summary;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Reporting pass with stable summaries.
    let mut findings = Vec::new();
    for id in 0..ws.fns.len() {
        if ws.fns[id].is_test || ws.fns[id].body.is_none() {
            continue;
        }
        let (_, mut found) = analyze_fn(ws, id, &file_calls, &summaries);
        findings.append(&mut found);
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule, &a.message)
            .cmp(&(&b.file, b.line, b.col, b.rule, &b.message))
    });
    findings.dedup();
    findings
}

/// Analyzes one function body against the current summaries, returning
/// its recomputed summary and any findings.
fn analyze_fn(
    ws: &Workspace,
    id: usize,
    file_calls: &[BTreeMap<usize, Call>],
    summaries: &[Summary],
) -> (Summary, Vec<Finding>) {
    let f = &ws.fns[id];
    let (blo, bhi) = match f.body {
        Some(range) => range,
        None => return (summaries[id].clone(), Vec::new()),
    };
    let file = &ws.files[f.file];
    // Nested fn items own their tokens; skip their bodies here.
    let skip: Vec<(usize, usize)> = ws
        .fns
        .iter()
        .filter(|g| g.file == f.file)
        .filter_map(|g| g.body)
        .filter(|&(l, r)| l > blo && r <= bhi)
        .collect();
    let mut vars = BTreeMap::new();
    for (p, name) in f.params.iter().enumerate() {
        if p < 63 {
            vars.insert(
                name.clone(),
                Taint {
                    params: 1u64 << p,
                    ..Taint::default()
                },
            );
        }
    }
    let mut a = Analyzer {
        ws,
        summaries,
        calls: &file_calls[f.file],
        toks: &file.toks,
        file_rel: file.rel.display().to_string().replace('\\', "/"),
        time_scope: !file.scope.bench_crate && !file.scope.obs_crate,
        vars,
        hash_vars: BTreeSet::new(),
        skip,
        new_summary: Summary {
            returns_secret: f.returns_labeled,
            sanitizes: vec![false; f.params.len()],
            to_sink: vec![None; f.params.len()],
            to_return: vec![false; f.params.len()],
        },
        findings: Vec::new(),
    };
    // The running taint at the end of the body is the trailing
    // expression — Rust's idiomatic return.
    let tail = a.scan(blo + 1, bhi);
    a.record_return(&tail);
    (a.new_summary, a.findings)
}

struct Analyzer<'a> {
    ws: &'a Workspace,
    summaries: &'a [Summary],
    calls: &'a BTreeMap<usize, Call>,
    toks: &'a [Token],
    file_rel: String,
    /// Wall-clock reads are sanctioned in bench/obs; elsewhere they
    /// feed the `nondet-time` rule.
    time_scope: bool,
    vars: BTreeMap<String, Taint>,
    /// Locals bound to `HashMap`/`HashSet` constructors.
    hash_vars: BTreeSet<String>,
    skip: Vec<(usize, usize)>,
    new_summary: Summary,
    findings: Vec<Finding>,
}

/// Finds the end of a statement/expression starting at `start`: the
/// terminating `;` at delimiter depth 0, an unmatched closing `}`, or —
/// unless the expression opens with a block form (`if`/`match`/…) — the
/// first `{` at depth 0 (a trailing block the caller walks itself).
fn stmt_end(toks: &[Token], start: usize, hi: usize) -> usize {
    let block_expr = match toks.get(start).map(|t| &t.kind) {
        Some(TokKind::Ident(id)) => {
            matches!(id.as_str(), "if" | "match" | "loop" | "while" | "unsafe")
        }
        Some(TokKind::Punct('{')) => true,
        _ => false,
    };
    let mut depth = 0usize;
    let mut j = start;
    while j < hi {
        match &toks[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth = depth.saturating_sub(1),
            TokKind::Punct('{') => {
                if block_expr || depth > 0 {
                    depth += 1;
                } else {
                    return j;
                }
            }
            TokKind::Punct('}') => {
                if depth > 0 {
                    depth -= 1;
                } else {
                    return j;
                }
            }
            TokKind::Punct(';') if depth == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    hi
}

impl<'a> Analyzer<'a> {
    fn step_at(&self, what: String, tok: usize) -> ChainStep {
        let t = &self.toks[tok];
        ChainStep {
            what,
            file: self.file_rel.clone(),
            line: t.line,
            col: t.col,
        }
    }

    fn ident_at(&self, i: usize) -> Option<&str> {
        match self.toks.get(i).map(|t| &t.kind) {
            Some(TokKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn is_hash_name(&self, name: &str) -> bool {
        self.hash_vars.contains(name) || self.ws.hash_names.contains(name)
    }

    fn emit(&mut self, rule: &'static str, message: String, chain: Vec<ChainStep>) {
        let anchor = match chain.first() {
            Some(s) => s.clone(),
            None => return,
        };
        self.findings.push(Finding {
            rule,
            file: anchor.file,
            line: anchor.line,
            col: anchor.col,
            message,
            chain,
        });
    }

    /// Linear walk of `[lo, hi)`: processes statements, evaluates call
    /// taint, and returns the running taint of the trailing expression
    /// segment.
    fn scan(&mut self, lo: usize, hi: usize) -> Taint {
        let mut acc = Taint::default();
        let mut i = lo;
        while i < hi {
            if let Some(&(_, end)) = self.skip.iter().find(|&&(s, e)| i >= s && i <= e) {
                i = end + 1;
                continue;
            }
            let kind = self.toks[i].kind.clone();
            match kind {
                TokKind::Ident(name) => {
                    match name.as_str() {
                        "let" => {
                            i = self.handle_let(i, hi);
                            acc = Taint::default();
                            continue;
                        }
                        "for" => {
                            i = self.handle_for(i, hi);
                            acc = Taint::default();
                            continue;
                        }
                        "return" => {
                            let end = stmt_end(self.toks, i + 1, hi);
                            let t = self.scan(i + 1, end);
                            self.record_return(&t);
                            i = if self.punct_at(end, ';') {
                                end + 1
                            } else {
                                end
                            };
                            acc = Taint::default();
                            continue;
                        }
                        _ => {}
                    }
                    if self.calls.contains_key(&i) {
                        let call = match self.calls.get(&i) {
                            Some(c) => c.clone(),
                            None => {
                                i += 1;
                                continue;
                            }
                        };
                        let recv = std::mem::take(&mut acc);
                        let args: Vec<Taint> = call
                            .args
                            .iter()
                            .map(|&(s, e)| self.scan(s, e + 1))
                            .collect();
                        let res = self.handle_call(&call, recv, &args);
                        acc.merge(&res);
                        i = call.end + 1;
                        continue;
                    }
                    // Simple (or compound) assignment to `name`.
                    if let Some(rhs) = self.assignment_rhs(i) {
                        let end = stmt_end(self.toks, rhs, hi);
                        let t = self.scan(rhs, end);
                        let entry = self.vars.entry(name.clone()).or_default();
                        entry.merge(&t);
                        i = if self.punct_at(end, ';') {
                            end + 1
                        } else {
                            end
                        };
                        acc = Taint::default();
                        continue;
                    }
                    if let Some(t) = self.vars.get(&name) {
                        let t = t.clone();
                        acc.merge(&t);
                    }
                }
                // A `;` or opening `{` starts a fresh expression
                // segment. A closing `}` deliberately does NOT reset:
                // the taint accumulated inside a block (or struct
                // literal) is the block's value and must survive as the
                // trailing expression of the enclosing statement.
                TokKind::Punct(';') | TokKind::Punct('{') => {
                    acc = Taint::default();
                }
                _ => {}
            }
            i += 1;
        }
        acc
    }

    fn punct_at(&self, i: usize, c: char) -> bool {
        self.toks.get(i).map(|t| &t.kind) == Some(&TokKind::Punct(c))
    }

    /// If token `i` (an identifier) is the target of an assignment,
    /// returns the index where the right-hand side starts.
    fn assignment_rhs(&self, i: usize) -> Option<usize> {
        // `name = rhs` (not `==`, `=>`, and not the `=` of `<=`/`>=`).
        if self.punct_at(i + 1, '=') && !self.punct_at(i + 2, '=') && !self.punct_at(i + 2, '>') {
            return Some(i + 2);
        }
        // `name += rhs` and friends.
        if let Some(TokKind::Punct(op)) = self.toks.get(i + 1).map(|t| &t.kind) {
            if "+-*/%&|^".contains(*op) && self.punct_at(i + 2, '=') && !self.punct_at(i + 3, '=') {
                return Some(i + 3);
            }
        }
        None
    }

    /// Handles `let [pattern][: ty] = rhs ;` starting at the `let`
    /// token; returns the index to resume scanning from.
    fn handle_let(&mut self, i: usize, hi: usize) -> usize {
        let mut pat: Vec<String> = Vec::new();
        let mut j = i + 1;
        let mut depth = 0usize;
        let mut angle = 0usize;
        let mut in_type = false;
        while j < hi {
            match &self.toks[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                    depth = depth.saturating_sub(1)
                }
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') if !self.punct_at(j - 1, '-') && !self.punct_at(j - 1, '=') => {
                    angle = angle.saturating_sub(1)
                }
                TokKind::Punct('=') if depth == 0 && angle == 0 => break,
                TokKind::Punct(';') if depth == 0 => return j + 1, // `let x;`
                TokKind::Punct(':') if depth == 0 && angle == 0 && !self.punct_at(j + 1, ':') => {
                    in_type = true;
                }
                TokKind::Ident(id) if !in_type => {
                    let path_seg = self.punct_at(j + 1, ':') && self.punct_at(j + 2, ':');
                    let constructor = self.punct_at(j + 1, '(');
                    if !path_seg
                        && !constructor
                        && id != "mut"
                        && id != "ref"
                        && id != "_"
                        && id != "else"
                    {
                        pat.push(id.clone());
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if j >= hi {
            return hi;
        }
        let rhs = j + 1;
        let end = stmt_end(self.toks, rhs, hi);
        let t = self.scan(rhs, end);
        // `let m = HashMap::new()` and friends mark hash locals.
        let rhs_has_hash =
            (rhs..end).any(|k| matches!(self.ident_at(k), Some("HashMap") | Some("HashSet")));
        for name in pat {
            if rhs_has_hash {
                self.hash_vars.insert(name.clone());
            }
            self.vars.insert(name, t.clone());
        }
        if self.punct_at(end, ';') {
            end + 1
        } else {
            end
        }
    }

    /// Handles `for pattern in expr {`, binding pattern taint (with a
    /// nondet mark for direct iteration over a hash container);
    /// returns the index of the loop body `{`.
    fn handle_for(&mut self, i: usize, hi: usize) -> usize {
        let mut pat: Vec<String> = Vec::new();
        let mut j = i + 1;
        while j < hi {
            match &self.toks[j].kind {
                TokKind::Ident(id) if id == "in" => break,
                TokKind::Ident(id)
                    if id != "mut" && id != "ref" && id != "_" && !self.punct_at(j + 1, '(') =>
                {
                    pat.push(id.clone());
                }
                _ => {}
            }
            j += 1;
        }
        if j >= hi {
            return hi;
        }
        let expr = j + 1;
        let mut depth = 0usize;
        let mut end = expr;
        while end < hi {
            match &self.toks[end].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth = depth.saturating_sub(1),
                TokKind::Punct('{') if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let mut t = self.scan(expr, end);
        // `for (k, v) in map` — iterating the container itself.
        if t.nondet.is_none() {
            let names: Vec<(usize, String)> = (expr..end)
                .filter_map(|k| self.ident_at(k).map(|s| (k, s.to_string())))
                .collect();
            if let [(tok, name)] = &names[..] {
                if self.is_hash_name(name) {
                    t.nondet =
                        Some(vec![self.step_at(
                            format!("source: unordered iteration over `{name}`"),
                            *tok,
                        )]);
                }
            }
        }
        for name in pat {
            self.vars.insert(name, t.clone());
        }
        end
    }

    fn record_return(&mut self, t: &Taint) {
        for p in bits(t.params) {
            if let Some(slot) = self.new_summary.to_return.get_mut(p) {
                *slot = true;
            }
        }
        if t.secret.is_some() {
            self.new_summary.returns_secret = true;
        }
    }

    fn record_sanitize(&mut self, t: &Taint) {
        for p in bits(t.params) {
            if let Some(slot) = self.new_summary.sanitizes.get_mut(p) {
                *slot = true;
            }
        }
    }

    /// Classifies a call as a sink.
    fn sink_of(&self, call: &Call) -> Option<(SinkKind, &'static str)> {
        let name = call.name.as_str();
        let receiver = match &call.style {
            CallStyle::Method { receiver } => receiver.as_deref(),
            _ => None,
        };
        let is_method = matches!(call.style, CallStyle::Method { .. });
        let is_macro = matches!(call.style, CallStyle::Macro);
        match name {
            "commit" if is_method => Some((SinkKind::Decision, "decision commit")),
            "ingest" | "ingest_all" if is_method => {
                Some((SinkKind::ServeMerge, "serve output merge"))
            }
            "atomic_write" if !is_macro => Some((SinkKind::Durable, "durable write")),
            "append_lines" if is_method => Some((SinkKind::Durable, "durable log append")),
            "append"
                if receiver.map(|r| r.contains("wal") || r.contains("journal")) == Some(true) =>
            {
                Some((SinkKind::Durable, "durable WAL append"))
            }
            "store" if receiver.map(|r| r.contains("slot")) == Some(true) => {
                Some((SinkKind::Durable, "durable checkpoint store"))
            }
            "write" if matches!(&call.style, CallStyle::Qualified(q) if q == "fs") => {
                Some((SinkKind::Durable, "raw file write"))
            }
            "println" | "print" | "eprintln" | "eprint" if is_macro => {
                Some((SinkKind::Stdout, "process output"))
            }
            "diag" | "diag_str" if is_macro => Some((SinkKind::Obs, "obs diagnostic")),
            "event" | "counter_add" | "gauge_set" if !is_macro => {
                Some((SinkKind::Obs, "obs event"))
            }
            _ => None,
        }
    }

    /// Checks the site argument of `declassify`/`require_public`
    /// against the parsed registry.
    fn check_site_arg(&mut self, call: &Call) {
        let (s, e) = match call.args.first() {
            Some(&r) => r,
            None => return,
        };
        // Single string literal: must be a registered site value.
        if s == e {
            if let Some(TokKind::Str(value)) = self.toks.get(s).map(|t| &t.kind) {
                if !self.ws.site_values.is_empty() && !self.ws.site_values.contains(value) {
                    let step = self.step_at(
                        format!("declassify at literal site \"{value}\""),
                        call.name_tok,
                    );
                    self.emit(
                        "unknown-declassify-site",
                        format!(
                            "declassification site \"{value}\" is not in the `taint::sites` \
                             registry"
                        ),
                        vec![step],
                    );
                }
            }
            return;
        }
        // `sites::CONST` path: the const must resolve in the registry.
        for k in s..e {
            if self.ident_at(k) == Some("sites")
                && self.punct_at(k + 1, ':')
                && self.punct_at(k + 2, ':')
            {
                if let Some(cname) = self.ident_at(k + 3) {
                    if !self.ws.site_consts.is_empty() && !self.ws.site_consts.contains_key(cname) {
                        let cname = cname.to_string();
                        let step = self.step_at(
                            format!("declassify at site const `sites::{cname}`"),
                            call.name_tok,
                        );
                        self.emit(
                            "unknown-declassify-site",
                            format!(
                                "site const `sites::{cname}` is not declared in the \
                                 `taint::sites` registry"
                            ),
                            vec![step],
                        );
                    }
                }
                return;
            }
        }
        // Anything else (a variable, a function call) is checked at
        // runtime by the audit layer.
    }

    /// Reports taint reaching a sink and records parameter→sink edges
    /// for the summary.
    fn report_sink(&mut self, call: &Call, kind: SinkKind, desc: &'static str, args: &[Taint]) {
        let sink_step = self.step_at(format!("sink: {desc}"), call.name_tok);
        for t in args {
            if let Some(chain) = &t.secret {
                let mut full = chain.clone();
                full.push(sink_step.clone());
                self.emit(
                    "secret-flow",
                    format!(
                        "secret-labeled value reaches {desc} without `declassify()` or \
                         `require_public()`"
                    ),
                    full,
                );
            }
            for p in bits(t.params) {
                if let Some(slot) = self.new_summary.to_sink.get_mut(p) {
                    if slot.is_none() {
                        *slot = Some(vec![sink_step.clone()]);
                    }
                }
            }
            if kind.ordered() {
                if let Some(chain) = &t.nondet {
                    let mut full = chain.clone();
                    full.push(sink_step.clone());
                    self.emit(
                        "nondet-iter",
                        format!(
                            "nondeterministically ordered value (HashMap/HashSet iteration) \
                             feeds {desc}; sort or fold order-insensitively first"
                        ),
                        full,
                    );
                }
            }
            if let Some(chain) = &t.time {
                let mut full = chain.clone();
                full.push(sink_step.clone());
                self.emit(
                    "nondet-time",
                    format!(
                        "wall-clock-derived value reaches {desc} outside a schedule \
                         declassification site"
                    ),
                    full,
                );
            }
        }
    }

    /// Evaluates one call: applies sanitizer/source/sink semantics and
    /// interprocedural summaries, returning the call result's taint.
    fn handle_call(&mut self, call: &Call, recv: Taint, args: &[Taint]) -> Taint {
        let name = call.name.as_str();
        let here = call.name_tok;
        let receiver_name = match &call.style {
            CallStyle::Method { receiver } => receiver.clone(),
            _ => None,
        };
        let is_method = matches!(call.style, CallStyle::Method { .. });

        // Sanitizers: an audited disclosure point clears secrecy (and
        // the wall-clock mark — schedule clocks are declassified
        // through exactly these calls) but not iteration order.
        if is_method && (name == "declassify" || name == "require_public") {
            self.check_site_arg(call);
            self.record_sanitize(&recv);
            return Taint {
                nondet: recv.nondet,
                ..Taint::default()
            };
        }
        if is_method && name == "public_value" {
            self.record_sanitize(&recv);
            return Taint {
                nondet: recv.nondet,
                ..Taint::default()
            };
        }

        // Secret sources.
        if matches!(&call.style, CallStyle::Qualified(q) if q == "Labeled") && name == "secret" {
            return Taint {
                secret: Some(vec![
                    self.step_at("source: Labeled::secret".to_string(), here)
                ]),
                ..Taint::default()
            };
        }
        if is_method && name == "taint" {
            let mut t = recv;
            t.secret = Some(vec![self.step_at("source: .taint()".to_string(), here)]);
            return t;
        }

        // Wall-clock sources.
        if let CallStyle::Qualified(q) = &call.style {
            if (q == "Instant" || q == "SystemTime") && name == "now" && self.time_scope {
                return Taint {
                    time: Some(vec![self.step_at(format!("source: {q}::now()"), here)]),
                    ..Taint::default()
                };
            }
        }

        // Unordered-iteration sources.
        if is_method && HASH_ITER_METHODS.contains(&name) {
            if let Some(r) = &receiver_name {
                if self.is_hash_name(r) {
                    let mut t = recv;
                    t.nondet =
                        Some(vec![self.step_at(
                            format!("source: unordered iteration over `{r}`"),
                            here,
                        )]);
                    return t;
                }
            }
        }

        // Order restoration / order-insensitive folds.
        if is_method && SORT_METHODS.contains(&name) {
            if let Some(r) = &receiver_name {
                if let Some(v) = self.vars.get_mut(r) {
                    v.nondet = None;
                }
            }
            let mut t = recv;
            t.nondet = None;
            return t;
        }
        if is_method && ORDER_INSENSITIVE.contains(&name) {
            let mut t = recv;
            for a in args {
                t.merge(a);
            }
            t.nondet = None;
            return t;
        }

        // Sinks.
        if let Some((kind, desc)) = self.sink_of(call) {
            self.report_sink(call, kind, desc, args);
            return Taint::default();
        }

        // Resolved workspace functions: consult summaries.
        if !call.resolved.is_empty() {
            return self.handle_resolved(call, &recv, args, here, is_method);
        }

        // Unresolved mutating collection methods write into the
        // receiver variable (`lines.push(v)`).
        if is_method && MUTATING_METHODS.contains(&name) {
            if let Some(r) = &receiver_name {
                let mut merged = Taint::default();
                for a in args {
                    merged.merge(a);
                }
                if !merged.is_empty() {
                    self.vars.entry(r.clone()).or_default().merge(&merged);
                }
            }
        }

        // Everything else propagates receiver + argument taint.
        let mut t = recv;
        for a in args {
            t.merge(a);
        }
        t
    }

    /// Applies callee summaries at a resolved call site.
    fn handle_resolved(
        &mut self,
        call: &Call,
        recv: &Taint,
        args: &[Taint],
        here: usize,
        is_method: bool,
    ) -> Taint {
        let mut res = Taint::default();
        // Positional argument list including the receiver for methods.
        let mut incoming: Vec<(bool, &Taint)> = Vec::new();
        if is_method {
            incoming.push((true, recv));
        }
        for a in args {
            incoming.push((false, a));
        }
        for &callee in &call.resolved {
            let summary = &self.summaries[callee];
            let callee_fn = &self.ws.fns[callee];
            let has_self = callee_fn.params.first().map(String::as_str) == Some("self");
            // A `Labeled`-returning *constructor* (free or associated
            // fn) is a fresh secret source. A `Labeled`-returning
            // *method* merely preserves its receiver's label (e.g.
            // `Labeled::map`): the secret-ness, if any, arrives through
            // the receiver's own taint via `to_return`, so common
            // method names (`map`, …) matched against `Labeled`'s impl
            // do not poison unrelated iterator chains.
            if summary.returns_secret && !has_self && res.secret.is_none() {
                res.secret = Some(vec![self.step_at(
                    format!("source: call to {} (returns Labeled)", callee_fn.qualname),
                    here,
                )]);
            }
            for (pos, (is_recv, t)) in incoming.iter().enumerate() {
                if t.is_empty() {
                    continue;
                }
                // Map call position to callee parameter index.
                let cp = if is_method {
                    if has_self {
                        pos
                    } else if *is_recv {
                        continue; // static method matched by name: no receiver slot
                    } else {
                        pos - 1
                    }
                } else {
                    pos
                };
                if cp >= summary.sanitizes.len() {
                    continue;
                }
                if summary.sanitizes[cp] {
                    // The callee discloses this argument through an
                    // audited site: the flow is legal.
                    self.record_sanitize(t);
                    continue;
                }
                if let Some(down) = &summary.to_sink[cp] {
                    let call_step = self.step_at(format!("call: {}", callee_fn.qualname), here);
                    if let Some(src) = &t.secret {
                        let mut full = src.clone();
                        full.push(call_step.clone());
                        full.extend(down.iter().cloned());
                        let sink = down
                            .last()
                            .map(|s| s.what.clone())
                            .unwrap_or_else(|| "sink".to_string());
                        self.emit(
                            "secret-flow",
                            format!(
                                "secret-labeled value flows through `{}` to a {} without \
                                 `declassify()` or `require_public()`",
                                callee_fn.name,
                                sink.trim_start_matches("sink: ")
                            ),
                            full,
                        );
                    }
                    for p in bits(t.params) {
                        if let Some(slot) = self.new_summary.to_sink.get_mut(p) {
                            if slot.is_none() {
                                let mut chain = vec![call_step.clone()];
                                chain.extend(down.iter().cloned());
                                *slot = Some(chain);
                            }
                        }
                    }
                }
                if summary.to_return[cp] {
                    res.params |= t.params;
                    if res.secret.is_none() {
                        res.secret.clone_from(&t.secret);
                    }
                }
            }
        }
        res
    }
}

/// Iterates the set bit positions of a parameter mask.
fn bits(mask: u64) -> impl Iterator<Item = usize> {
    (0..63).filter(move |p| mask & (1u64 << p) != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_workspace;

    /// Builds a throwaway mini-workspace on disk and analyzes it.
    fn analyze(files: &[(&str, &str)]) -> Vec<Finding> {
        let dir = std::env::temp_dir().join(format!(
            "untangle-flow-unit-{}-{}",
            std::process::id(),
            files.len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        for (rel, src) in files {
            let path = dir.join(rel);
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent).unwrap();
            }
            std::fs::write(&path, src).unwrap();
        }
        let ws = parse_workspace(&dir).unwrap();
        let findings = analyze_workspace(&ws);
        let _ = std::fs::remove_dir_all(&dir);
        findings
    }

    const REGISTRY: &str = "pub mod sites {\n pub const METRIC: &str = \"metric::demo\";\n}\n";

    #[test]
    fn direct_secret_to_commit_is_flagged_with_chain() {
        let src = format!(
            "{REGISTRY}\
             struct Core;\n\
             impl Core {{ fn commit(&self, a: u64) {{}} }}\n\
             fn step(core: &Core) {{\n\
                 let s = Labeled::secret(7u64);\n\
                 core.commit(s);\n\
             }}\n"
        );
        let findings = analyze(&[("crates/core/src/lib.rs", &src)]);
        let secret: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "secret-flow")
            .collect();
        assert_eq!(secret.len(), 1, "{findings:?}");
        let chain: Vec<&str> = secret[0].chain.iter().map(|s| s.what.as_str()).collect();
        assert_eq!(chain, ["source: Labeled::secret", "sink: decision commit"]);
    }

    #[test]
    fn declassify_at_registered_site_is_legal() {
        let src = format!(
            "{REGISTRY}\
             struct Core;\n\
             impl Core {{ fn commit(&self, a: u64) {{}} }}\n\
             fn step(core: &Core) {{\n\
                 let s = Labeled::secret(7u64);\n\
                 let a = s.declassify(sites::METRIC);\n\
                 core.commit(a);\n\
             }}\n"
        );
        let findings = analyze(&[("crates/core/src/lib.rs", &src)]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unknown_literal_site_is_flagged() {
        let src = format!(
            "{REGISTRY}\
             fn step() -> u64 {{\n\
                 let s = Labeled::secret(7u64);\n\
                 s.declassify(\"not::registered\")\n\
             }}\n"
        );
        let findings = analyze(&[("crates/core/src/lib.rs", &src)]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "unknown-declassify-site");
    }

    #[test]
    fn interprocedural_flow_reports_the_full_call_chain() {
        let src = format!(
            "{REGISTRY}\
             struct Core;\n\
             impl Core {{ fn commit(&self, a: u64) {{}} }}\n\
             fn emit(core: &Core, v: u64) {{ core.commit(v); }}\n\
             fn load() -> Labeled<u64> {{ Labeled::secret(7u64) }}\n\
             fn step(core: &Core) {{\n\
                 let s = load();\n\
                 emit(core, s);\n\
             }}\n"
        );
        let findings = analyze(&[("crates/core/src/lib.rs", &src)]);
        let secret: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "secret-flow")
            .collect();
        assert_eq!(secret.len(), 1, "{findings:?}");
        let chain: Vec<&str> = secret[0].chain.iter().map(|s| s.what.as_str()).collect();
        assert_eq!(
            chain,
            [
                "source: call to crates/core/src/lib.rs::load (returns Labeled)",
                "call: crates/core/src/lib.rs::emit",
                "sink: decision commit",
            ]
        );
    }

    #[test]
    fn sanitizing_callee_makes_the_flow_legal() {
        let src = format!(
            "{REGISTRY}\
             struct Sched {{ last: u64 }}\n\
             impl Sched {{\n\
                 fn on_retire(&mut self, t: Labeled<u64>) {{\n\
                     self.last = t.declassify(sites::METRIC);\n\
                 }}\n\
             }}\n\
             fn step(sched: &mut Sched) {{ sched.on_retire(Labeled::secret(3u64)); }}\n"
        );
        let findings = analyze(&[("crates/core/src/lib.rs", &src)]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn hashmap_iteration_into_serve_merge_is_flagged() {
        let src = "struct Out;\n\
                   impl Out { fn ingest(&mut self, lines: Vec<String>) {} }\n\
                   fn merge(out: &mut Out, m: &HashMap<u64, String>) {\n\
                       let mut lines = Vec::new();\n\
                       for (k, v) in m.iter() {\n\
                           lines.push(v.clone());\n\
                       }\n\
                       out.ingest(lines);\n\
                   }\n";
        let findings = analyze(&[("crates/serve/src/lib.rs", src)]);
        let nondet: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "nondet-iter")
            .collect();
        assert_eq!(nondet.len(), 1, "{findings:?}");
        let chain: Vec<&str> = nondet[0].chain.iter().map(|s| s.what.as_str()).collect();
        assert_eq!(
            chain,
            [
                "source: unordered iteration over `m`",
                "sink: serve output merge",
            ]
        );
    }

    #[test]
    fn sorting_clears_the_nondet_mark() {
        let src = "struct Out;\n\
                   impl Out { fn ingest(&mut self, lines: Vec<String>) {} }\n\
                   fn merge(out: &mut Out, m: &HashMap<u64, String>) {\n\
                       let mut lines = Vec::new();\n\
                       for (k, v) in m.iter() {\n\
                           lines.push(v.clone());\n\
                       }\n\
                       lines.sort();\n\
                       out.ingest(lines);\n\
                   }\n";
        let findings = analyze(&[("crates/serve/src/lib.rs", src)]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn wall_clock_to_output_is_flagged_outside_bench() {
        let src = "fn stamp() {\n\
                       let t = SystemTime::now();\n\
                       println!(\"{:?}\", t);\n\
                   }\n";
        let core = analyze(&[("crates/core/src/lib.rs", src)]);
        assert_eq!(core.iter().filter(|f| f.rule == "nondet-time").count(), 1);
        // The bench harness's clocks are sanctioned.
        let bench = analyze(&[("crates/bench/src/lib.rs", src)]);
        assert!(bench.is_empty(), "{bench:?}");
    }

    #[test]
    fn test_code_is_skipped() {
        let src = "struct Core;\n\
                   impl Core { fn commit(&self, a: u64) {} }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t(core: &super::Core) { core.commit(Labeled::secret(1u64)); }\n\
                   }\n";
        let findings = analyze(&[("crates/core/src/lib.rs", src)]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
