//! # Untangle
//!
//! A Rust reproduction of *"Untangle: A Principled Framework to Design
//! Low-Leakage, High-Performance Dynamic Partitioning Schemes"*
//! (ASPLOS 2023).
//!
//! Dynamic partitioning of shared hardware (here: the last-level cache)
//! adapts partition sizes to demand — and leaks information through the
//! resizing trace. Untangle splits that leakage into **action leakage**
//! `H(S)` and **scheduling leakage** `E[H(T_s|S=s)]`, eliminates the
//! former with timing-independent metrics, progress-based schedules and
//! secret annotations, and tightly bounds the latter with a
//! covert-channel model solved by Dinkelbach's transform.
//!
//! This facade re-exports the five crates of the workspace:
//!
//! * [`info`] — information theory, trace-leakage decomposition,
//!   covert-channel model, `R_max` solver, rate tables.
//! * [`trace`] — the retired-instruction model, secret annotations, and
//!   synthetic workload generators.
//! * [`sim`] — set-associative caches, LLC set partitioning, UMON-style
//!   utility monitoring, and the multicore timing model.
//! * [`core`] — the Untangle framework itself: metrics, schedules,
//!   heuristics, leakage accounting, the four evaluated schemes, and
//!   the evaluation runner.
//! * [`workloads`] — the 36 SPEC-like and 8 crypto-like benchmarks and
//!   the 16 evaluation mixes.
//! * [`obs`] — the dependency-free observability layer (span timers,
//!   counters, structured events) the solver, cache, and experiment
//!   engine report into; activated via `UNTANGLE_OBS=summary|json`.
//!
//! # Quickstart
//!
//! ```
//! use untangle::core::runner::{Runner, RunnerConfig};
//! use untangle::core::scheme::SchemeKind;
//! use untangle::trace::synth::{WorkingSetModel, WorkingSetConfig};
//!
//! // A workload with a 1 MB working set under the Untangle scheme.
//! let config = RunnerConfig::test_scale(SchemeKind::Untangle, 1);
//! let source = WorkingSetModel::new(WorkingSetConfig::default(), 42);
//! let report = Runner::new(config, vec![Box::new(source)]).expect("valid config").run();
//!
//! let domain = &report.domains[0];
//! println!(
//!     "IPC {:.2}, {} assessments, {:.2} bits leaked per assessment",
//!     domain.ipc(),
//!     domain.leakage.assessments,
//!     domain.leakage.bits_per_assessment(),
//! );
//! // Untangle leaks far less than the conventional log2(9) ≈ 3.17 bits.
//! assert!(domain.leakage.bits_per_assessment() < 3.17);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use untangle_core as core;
pub use untangle_info as info;
pub use untangle_obs as obs;
pub use untangle_sim as sim;
pub use untangle_trace as trace;
pub use untangle_workloads as workloads;
