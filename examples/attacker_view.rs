//! The threat model (§4), end to end: a co-located attacker infers the
//! victim's secret from what it can observe — its *own* partition's
//! evolution and the victim's resizing trace.
//!
//! Two domains share the LLC allocator. The victim runs a secret-gated
//! traversal (Figure 1a); the attacker runs a fixed workload and simply
//! watches the attacker-visible state. Under the conventional Time
//! scheme the victim's trace differs across secrets — one observation
//! distinguishes the secret. Under Untangle with annotations the
//! attacker-visible trace is bit-identical across secrets.
//!
//! ```sh
//! cargo run --release --example attacker_view
//! ```

use untangle::core::runner::{Runner, RunnerConfig};
use untangle::core::scheme::SchemeKind;
use untangle::sim::config::PartitionSize;
use untangle::trace::snippets::secret_gated_traversal;
use untangle::trace::source::TraceSource;
use untangle::trace::synth::{WorkingSetConfig, WorkingSetModel};
use untangle::trace::LineAddr;

/// What the idealized attacker of §4 sees of the victim: the sequence
/// of visible resizing actions (sizes only — timing analysis is the
/// scheduling channel, bounded separately).
fn observable(kind: SchemeKind, secret: bool, annotate: bool) -> Vec<PartitionSize> {
    let victim_public = |seed| {
        WorkingSetModel::new(
            WorkingSetConfig {
                working_set_bytes: 512 << 10,
                ..WorkingSetConfig::default()
            },
            seed,
        )
        .take_instrs(150_000)
    };
    let gated = secret_gated_traversal(secret, 4 << 20, LineAddr::new(1 << 30), annotate)
        .chain(secret_gated_traversal(
            secret,
            4 << 20,
            LineAddr::new(1 << 30),
            annotate,
        ))
        .chain(secret_gated_traversal(
            secret,
            4 << 20,
            LineAddr::new(1 << 30),
            annotate,
        ));
    let victim = victim_public(1).chain(gated).chain(victim_public(2));
    // The attacker runs something steady, long enough to outlive the
    // victim's whole execution.
    let attacker = WorkingSetModel::new(
        WorkingSetConfig {
            working_set_bytes: 1 << 20,
            ..WorkingSetConfig::default()
        },
        99,
    )
    .take_instrs(12_000_000);

    let mut config = RunnerConfig::test_scale(kind, 2);
    config.warmup_cycles = 0.0;
    config.slice_instrs = u64::MAX;
    let report = Runner::new(config, vec![Box::new(victim), Box::new(attacker)])
        .expect("runner")
        .run();
    report.domains[0]
        .trace
        .entries()
        .iter()
        .filter(|e| e.class.is_visible())
        .map(|e| e.action.size)
        .collect()
}

fn main() {
    println!("Victim: Figure-1a workload (secret gates a 4 MB traversal).");
    println!("Attacker: co-located domain observing the victim's visible resizes.\n");

    for (kind, annotate, label) in [
        (SchemeKind::Time, false, "TIME, no annotations"),
        (SchemeKind::Untangle, true, "UNTANGLE, annotated"),
    ] {
        let secret0 = observable(kind, false, annotate);
        let secret1 = observable(kind, true, annotate);
        println!("{label}:");
        println!("  secret=0 -> visible actions: {:?}", secret0);
        println!("  secret=1 -> visible actions: {:?}", secret1);
        if secret0 == secret1 {
            println!("  => indistinguishable: the attacker learns nothing from actions\n");
        } else {
            println!("  => DISTINGUISHABLE: one observation reveals the secret\n");
        }
    }
}
