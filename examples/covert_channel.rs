//! The §5.3 covert-channel model, hands on:
//!
//! * the Figure 3 leakage decomposition (1.5 bits);
//! * the §5.3.1 strategy trade-off (more symbols ≠ more rate);
//! * `R_max` via Dinkelbach's transform, and how the cooldown
//!   (Mechanism 1) and the random delay (Mechanism 2) lower it;
//! * the §5.3.4 Maintain-optimized rate table.
//!
//! ```sh
//! cargo run --release --example covert_channel
//! ```

use untangle::info::decompose::TraceEnsemble;
use untangle::info::rate_table::{RateTable, RateTableConfig};
use untangle::info::{Channel, ChannelConfig, DelayDist, Dist, RmaxSolver};

fn main() {
    // --- Figure 3: decomposing trace leakage --------------------------
    let mut ensemble = TraceEnsemble::new();
    ensemble.add_trace(vec!["EXPAND", "MAINTAIN"], vec![100, 200], 0.25);
    ensemble.add_trace(vec!["EXPAND", "MAINTAIN"], vec![150, 300], 0.25);
    ensemble.add_trace(vec!["MAINTAIN", "MAINTAIN"], vec![120, 240], 0.5);
    let leak = ensemble.leakage().expect("valid ensemble");
    println!("Figure 3 worked example:");
    println!(
        "  action leakage     H(S)          = {:.2} bits",
        leak.action_bits
    );
    println!(
        "  scheduling leakage E[H(T_s|S=s)] = {:.2} bits",
        leak.scheduling_bits
    );
    println!(
        "  total              L             = {:.2} bits\n",
        leak.total_bits()
    );

    // --- §5.3.1: the strategy trade-off -------------------------------
    let rate = |n: u64| {
        let ch = Channel::new(ChannelConfig {
            cooldown: 1,
            durations: (1..=n).collect(),
            delay: DelayDist::none(),
        })
        .expect("valid channel");
        ch.rate_bits_per_unit(&Dist::uniform(n as usize).expect("n > 0"))
            .expect("uniform input is valid for this channel")
            * 1000.0
    };
    println!("Strategy trade-off (1 unit = 1 ms):");
    println!("  4 symbols, 1-4 ms: {:.0} bit/s", rate(4));
    println!(
        "  8 symbols, 1-8 ms: {:.0} bit/s  <- more symbols, lower rate\n",
        rate(8)
    );

    // --- R_max and the two mechanisms ---------------------------------
    let rmax = |cooldown: u64, delay_width: usize| {
        let delay = if delay_width <= 1 {
            DelayDist::none()
        } else {
            DelayDist::uniform(delay_width).expect("valid width")
        };
        let config = ChannelConfig::evenly_spaced(cooldown, 8, delay_width.max(1) as u64, delay)
            .expect("valid config");
        RmaxSolver::new(Channel::new(config).expect("valid channel"))
            .solve()
            .expect("solver converges")
            .upper_bound
    };
    println!("Mechanism 1 — longer cooldown T_c lowers R_max (delay width 8):");
    for tc in [8u64, 16, 32, 64] {
        println!("  T_c = {tc:>3} units: R_max = {:.4} bit/unit", rmax(tc, 8));
    }
    println!("Mechanism 2 — wider random delay lowers R_max (T_c = 16):");
    for w in [1usize, 4, 16, 32] {
        println!(
            "  delay width {w:>2} units: R_max = {:.4} bit/unit",
            rmax(16, w)
        );
    }
    println!();

    // --- §5.3.4: Maintain credit ---------------------------------------
    let table = RateTable::precompute(&RateTableConfig {
        cooldown: 16,
        n_symbols: 8,
        step: 8,
        delay: DelayDist::uniform(8).expect("valid width"),
        max_maintains: 6,
    })
    .expect("precompute converges");
    println!("Maintain-optimized rate table (T'_c = (n+1)·T_c):");
    for (n, &r) in table.rates().iter().enumerate() {
        println!("  after {n} consecutive Maintains: R_max = {r:.4} bit/unit");
    }
}
