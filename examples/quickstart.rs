//! Quickstart: run one workload under all four partitioning schemes and
//! compare performance and leakage.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Runs at 1/100 of the paper's protocol; takes ~half a minute.

use untangle::core::runner::{Runner, RunnerConfig};
use untangle::core::scheme::SchemeKind;
use untangle::trace::synth::{WorkingSetConfig, WorkingSetModel};

fn main() {
    // A workload whose working set (3 MB) exceeds the 2 MB static
    // partition: dynamic schemes can win by expanding.
    let workload = WorkingSetConfig {
        working_set_bytes: 3 << 20,
        ..WorkingSetConfig::default()
    };

    println!(
        "{:<10} {:>8} {:>13} {:>17} {:>12}",
        "scheme", "IPC", "assessments", "bits/assessment", "total bits"
    );
    for kind in SchemeKind::ALL {
        let config = RunnerConfig::eval_scale(kind, 0.01).expect("eval scale");
        let source = WorkingSetModel::new(workload.clone(), 42);
        let report = Runner::new(config, vec![Box::new(source)])
            .expect("runner")
            .run();
        let d = &report.domains[0];
        println!(
            "{:<10} {:>8.3} {:>13} {:>17.3} {:>12.2}",
            kind.to_string(),
            d.ipc(),
            d.leakage.assessments,
            d.leakage.bits_per_assessment(),
            d.leakage.total_bits,
        );
    }
    println!();
    println!("STATIC never resizes (no leakage, no adaptivity).");
    println!("TIME adapts but pays log2(9) ≈ 3.17 bits at every assessment.");
    println!("UNTANGLE adapts with the same machinery while charging only the");
    println!("certified covert-channel bound — most assessments are Maintain");
    println!("and cost nothing. SHARED is the insecure upper baseline.");
}
