//! §6.3: applying the Untangle framework to a different resource — the
//! shared second-level TLB.
//!
//! The framework pieces are resource-agnostic: a timing-independent
//! utilization metric (here, TLB hits under every candidate slice
//! size), a progress-based schedule with a structural cooldown, and
//! the `R_max` rate table. Only the substrate changes.
//!
//! ```sh
//! cargo run --release --example tlb_partitioning
//! ```

use untangle::core::schedule::{ProgressSchedule, ScheduleEvent};
use untangle::info::rate_table::{RateTable, RateTableConfig};
use untangle::info::DelayDist;
use untangle::sim::tlb::{Tlb, TlbUtilityMonitor, TLB_SIZES};
use untangle::trace::source::TraceSource;
use untangle::trace::synth::{WorkingSetConfig, WorkingSetModel};

fn main() {
    // A workload whose page footprint outgrows a small TLB slice:
    // 2 MB working set = ~512 pages.
    let mut workload = WorkingSetModel::new(
        WorkingSetConfig {
            working_set_bytes: 2 << 20,
            hot_fraction: 0.2,
            stream_fraction: 0.0,
            mem_fraction: 0.4,
            ..WorkingSetConfig::default()
        },
        17,
    );

    let mut tlb = Tlb::new(64); // start with a small slice
    let mut monitor = TlbUtilityMonitor::new(8192);
    let mut schedule = ProgressSchedule::new(100_000);
    // The same covert-channel machinery prices the TLB resizes.
    let table = RateTable::precompute(&RateTableConfig {
        cooldown: 16,
        n_symbols: 8,
        step: 8,
        delay: DelayDist::uniform(8).expect("valid width"),
        max_maintains: 8,
    })
    .expect("precompute converges");

    let mut charged_bits = 0.0;
    let mut maintains_in_a_row = 0usize;
    let mut resizes = 0;
    println!(
        "{:>10} {:>9} {:>10} {:>12}",
        "instrs", "TLB size", "hit rate", "charged bits"
    );
    for step in 1..=10u64 {
        let mut hits = 0u64;
        let mut accesses = 0u64;
        loop {
            let instr = workload.next_instr().expect("infinite source");
            if let Some(access) = instr.mem_access() {
                accesses += 1;
                if tlb.translate(access.addr) {
                    hits += 1;
                }
                if instr.counts_toward_utilization() {
                    monitor.observe(access.addr);
                }
            }
            if instr.counts_toward_progress()
                && schedule.on_retire(untangle::core::taint::Labeled::public(true))
                    == ScheduleEvent::Assess
            {
                break;
            }
        }
        // Assessment: the smallest adequate slice per the monitor.
        let target = monitor.adequate_entries(monitor.window_fill() as u64 / 50);
        if target != tlb.entries() {
            // Visible action: charge the rate-table bound for the
            // elapsed period ((maintains+1) cooldowns, by construction).
            charged_bits +=
                table.rate(maintains_in_a_row) * 16.0 * (maintains_in_a_row as f64 + 1.0);
            maintains_in_a_row = 0;
            tlb.resize(target);
            resizes += 1;
        } else {
            maintains_in_a_row += 1;
        }
        println!(
            "{:>10} {:>9} {:>9.1}% {:>12.3}",
            step * 100_000,
            tlb.entries(),
            hits as f64 / accesses.max(1) as f64 * 100.0,
            charged_bits,
        );
    }
    println!(
        "\n{resizes} resizes; final slice {} of {} supported sizes {:?}",
        tlb.entries(),
        TLB_SIZES.len(),
        TLB_SIZES
    );
    println!("The identical framework — metric, schedule, cooldown, rate table —");
    println!("drives a TLB instead of the LLC, as §6.3 describes.");
}
