//! The three leaks of Figure 1, and how Untangle's principles remove
//! the first two and bound the third.
//!
//! * Fig. 1a/1b: secret-dependent *demand* changes the resizing actions
//!   of a conventional scheme; with annotations, Untangle's action
//!   sequence is bit-identical across secrets (no action leakage).
//! * Fig. 1c: secret-dependent *timing* shifts when the expansion
//!   happens; the action sequence stays fixed and only the certified
//!   scheduling bound is charged.
//!
//! ```sh
//! cargo run --release --example annotations
//! ```

use untangle::core::action::Action;
use untangle::core::runner::{Runner, RunnerConfig};
use untangle::core::scheme::SchemeKind;
use untangle::trace::snippets::{secret_delayed_traversal, secret_gated_traversal};
use untangle::trace::source::{TraceSource, VecSource};
use untangle::trace::synth::{WorkingSetConfig, WorkingSetModel};
use untangle::trace::LineAddr;

/// Runs the Figure-1a pattern (a secret-gated 4 MB traversal inside an
/// otherwise public workload) and returns the action sequence.
fn run_fig1a(kind: SchemeKind, secret: bool, annotate: bool) -> Vec<Action> {
    // Public phase, then the gated traversal, then more public phase.
    let public = |seed| {
        WorkingSetModel::new(
            WorkingSetConfig {
                working_set_bytes: 512 << 10,
                ..WorkingSetConfig::default()
            },
            seed,
        )
        .take_instrs(120_000)
    };
    // Traverse three times so the array shows reuse the monitor can see.
    let gated = secret_gated_traversal(secret, 4 << 20, LineAddr::new(1 << 30), annotate)
        .chain(secret_gated_traversal(
            secret,
            4 << 20,
            LineAddr::new(1 << 30),
            annotate,
        ))
        .chain(secret_gated_traversal(
            secret,
            4 << 20,
            LineAddr::new(1 << 30),
            annotate,
        ));
    let source = public(1).chain(gated).chain(public(2));
    let mut config = RunnerConfig::test_scale(kind, 1);
    // Record the whole execution: the comparison needs architecturally
    // aligned boundaries, so no cycle-based warmup cut (it would shift
    // with the secret-dependent timing we are demonstrating) and no
    // instruction-count cut (the secret changes the retired count).
    config.warmup_cycles = 0.0;
    config.slice_instrs = u64::MAX;
    let report = Runner::new(config, vec![Box::new(source)])
        .expect("runner")
        .run();
    report.domains[0].trace.action_sequence()
}

/// Runs the Figure-1c pattern (secret-gated delay before a public
/// traversal) and returns (action sequence, time of the first visible
/// action).
fn run_fig1c(secret: bool) -> (Vec<Action>, Option<f64>) {
    let public = WorkingSetModel::new(
        WorkingSetConfig {
            working_set_bytes: 256 << 10,
            ..WorkingSetConfig::default()
        },
        3,
    )
    .take_instrs(100_000);
    let delayed: VecSource =
        secret_delayed_traversal(secret, 200_000, 4 << 20, LineAddr::new(1 << 30), true);
    let again = secret_delayed_traversal(false, 0, 4 << 20, LineAddr::new(1 << 30), true);
    let again2 = secret_delayed_traversal(false, 0, 4 << 20, LineAddr::new(1 << 30), true);
    let tail = WorkingSetModel::new(WorkingSetConfig::default(), 4).take_instrs(100_000);
    let source = public.chain(delayed).chain(again).chain(again2).chain(tail);
    let mut config = RunnerConfig::test_scale(SchemeKind::Untangle, 1);
    config.warmup_cycles = 0.0;
    config.slice_instrs = u64::MAX;
    let report = Runner::new(config, vec![Box::new(source)])
        .expect("runner")
        .run();
    let trace = &report.domains[0].trace;
    let first_visible = trace
        .entries()
        .iter()
        .find(|e| e.class.is_visible())
        .map(|e| e.decided_at_cycles);
    (trace.action_sequence(), first_visible)
}

fn main() {
    println!("== Figure 1a: secret-gated traversal ==");
    let conv_0 = run_fig1a(SchemeKind::Time, false, false);
    let conv_1 = run_fig1a(SchemeKind::Time, true, false);
    println!(
        "conventional TIME scheme, no annotations: action sequences {}",
        if conv_0 == conv_1 {
            "IDENTICAL (this workload got lucky)"
        } else {
            "DIFFER -> the secret leaks through the actions"
        }
    );
    let unt_0 = run_fig1a(SchemeKind::Untangle, false, true);
    let unt_1 = run_fig1a(SchemeKind::Untangle, true, true);
    println!(
        "UNTANGLE with annotations: action sequences {}",
        if unt_0 == unt_1 {
            "IDENTICAL -> zero action leakage"
        } else {
            "DIFFER (unexpected!)"
        }
    );

    println!("\n== Figure 1c: secret-dependent timing ==");
    let (seq_0, t_0) = run_fig1c(false);
    let (seq_1, t_1) = run_fig1c(true);
    println!(
        "action sequences {} across secrets",
        if seq_0 == seq_1 {
            "IDENTICAL"
        } else {
            "DIFFER (unexpected!)"
        }
    );
    match (t_0, t_1) {
        (Some(a), Some(b)) => println!(
            "first visible action at {a:.0} vs {b:.0} cycles -> timing shifted by {:.0} cycles;\n\
             this is exactly the scheduling leakage the R_max bound charges",
            (b - a).abs()
        ),
        _ => println!("(no visible actions in one of the runs)"),
    }
}
