//! §6.3's other resource: functional units shared by two SMT threads.
//!
//! SecSMT (Table 1) counts "full" events — a timing-dependent signal.
//! Untangle's principle 1 replaces it with the fraction of *retired*
//! instructions per functional-unit class, which depends only on the
//! architectural instruction sequence. This example partitions issue
//! slots between two threads with opposite mixes and shows both
//! metrics side by side.
//!
//! ```sh
//! cargo run --release --example smt_partitioning
//! ```

use untangle::sim::smt::{FuClass, FuMixMonitor, SlotAllocation, SmtCore, SmtThreadModel};

fn drive(core: &mut SmtCore, cycles: u64, monitors: &mut [FuMixMonitor; 2]) {
    let mut t0 = SmtThreadModel::new([10.0, 0.5, 0.5, 1.0], 7); // ALU-heavy
    let mut t1 = SmtThreadModel::new([1.0, 0.5, 0.5, 10.0], 8); // LdSt-heavy
    let mut pending: [Option<FuClass>; 2] = [None, None];
    for _ in 0..cycles {
        for (thread, model) in [(0usize, &mut t0), (1usize, &mut t1)] {
            // Each thread tries to issue up to 4 instructions per cycle,
            // retrying a stalled one first.
            for _ in 0..4 {
                let class = pending[thread].take().unwrap_or_else(|| model.next_class());
                if core.try_issue(thread, class) {
                    monitors[thread].observe(class);
                } else {
                    pending[thread] = Some(class);
                    break;
                }
            }
        }
        core.next_cycle();
    }
}

fn main() {
    let mut core = SmtCore::new(SlotAllocation::even());
    let mut monitors = [FuMixMonitor::new(4096), FuMixMonitor::new(4096)];

    // Phase 1: even split.
    drive(&mut core, 20_000, &mut monitors);
    let even_retired = (core.retired(0), core.retired(1));
    println!(
        "Even slot split: thread0 retired {}, thread1 retired {}",
        even_retired.0, even_retired.1
    );
    println!(
        "SecSMT full events (timing-dependent): t0 {:?}, t1 {:?}",
        core.full_events(0),
        core.full_events(1)
    );
    println!("Untangle instruction-mix metric (timing-independent):");
    for (t, m) in monitors.iter().enumerate() {
        let mix: Vec<String> = FuClass::ALL
            .iter()
            .map(|&c| format!("{c:?} {:.0}%", m.fraction(c) * 100.0))
            .collect();
        println!("  thread{t}: {}", mix.join(", "));
    }

    // Resize from the timing-independent metric: proportional slots.
    let allocation =
        FuMixMonitor::proportional_allocation(&monitors[0], &monitors[1], [4, 2, 2, 4]);
    core.set_allocation(allocation);
    println!(
        "\nRepartitioned slots (thread0 share): {:?}",
        allocation.thread0
    );

    // Phase 2: adapted split.
    drive(&mut core, 20_000, &mut monitors);
    let after = (
        core.retired(0) - even_retired.0,
        core.retired(1) - even_retired.1,
    );
    println!(
        "Adapted slot split: thread0 retired {}, thread1 retired {} in the same window",
        after.0, after.1
    );
    println!("\nThe same Untangle recipe applies: a timing-independent metric");
    println!("(instruction mix) drives the resize, a progress-based schedule");
    println!("would pace it, and the R_max table would price its visibility.");
}
