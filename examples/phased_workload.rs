//! The motivating scenario for dynamic partitioning (§1): a workload
//! whose demand *changes over time*. A static partition is either
//! wasteful (sized for the peak) or under-provisioned (sized for the
//! average); Untangle follows the phases while charging only the
//! certified leakage bound for each visible resize.
//!
//! ```sh
//! cargo run --release --example phased_workload
//! ```

use untangle::core::runner::{Runner, RunnerConfig};
use untangle::core::scheme::SchemeKind;
use untangle::sim::config::PartitionSize;
use untangle::trace::synth::{PhasedModel, WorkingSetConfig};

fn phased() -> PhasedModel {
    let phase = |kb: u64| WorkingSetConfig {
        working_set_bytes: kb << 10,
        ..WorkingSetConfig::default()
    };
    // Small -> large -> medium, repeating.
    PhasedModel::new(
        vec![
            (phase(256), 800_000),
            (phase(5 << 10), 800_000),
            (phase(1 << 10), 800_000),
        ],
        21,
    )
}

fn main() {
    println!("A workload cycling through 256 kB / 5 MB / 1 MB working-set phases.\n");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>14} {:>12}",
        "scheme", "IPC", "resizes", "maintains", "bits charged", "median size"
    );
    for kind in [SchemeKind::Static, SchemeKind::Untangle, SchemeKind::Time] {
        let mut config = RunnerConfig::eval_scale(kind, 0.01).expect("eval scale");
        config.slice_instrs = 4_800_000; // two full phase cycles
        let report = Runner::new(config, vec![Box::new(phased())])
            .expect("runner")
            .run();
        let d = &report.domains[0];
        let median = d
            .size_quartiles()
            .map(|q| q.2.to_string())
            .unwrap_or_else(|| PartitionSize::MB2.to_string());
        println!(
            "{:<10} {:>8.3} {:>10} {:>10} {:>14.2} {:>12}",
            kind.to_string(),
            d.ipc(),
            d.leakage.visible_actions,
            d.leakage.maintains,
            d.leakage.total_bits,
            median,
        );
    }
    println!("\nUntangle expands for the 5 MB phase (a visible action, charged at");
    println!("the R_max(m) bound) and maintains otherwise — with the LLC to itself");
    println!("it keeps the capacity rather than thrash (shrinks are demand-driven).");
    println!("The Time scheme adapts the same way but pays 3.17 bits at every");
    println!("single assessment, adaptive or not.");
}
