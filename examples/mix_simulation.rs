//! Run the paper's Mix 1 (Figure 10, top-left group) at a reduced scale
//! and print the three chart rows: partition-size medians, leakage per
//! assessment, and IPC normalized to Static.
//!
//! ```sh
//! cargo run --release --example mix_simulation
//! ```
//!
//! Pass a different mix id (1–16) as the first argument.

use untangle::core::runner::{Runner, RunnerConfig};
use untangle::core::scheme::SchemeKind;
use untangle::sim::stats::geometric_mean;
use untangle::workloads::mix::mix_by_id;

fn main() {
    let id: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);
    let mix = mix_by_id(id).unwrap_or_else(|| {
        eprintln!("mix id must be 1..=16");
        std::process::exit(2);
    });
    let scale = 0.004;
    println!(
        "Mix {id}: {} LLC-sensitive benchmarks, total LLC demand {:.1} MB (scale {scale})\n",
        mix.sensitive_count(),
        mix.total_demand_mb()
    );

    let run = |kind: SchemeKind| {
        let config = RunnerConfig::eval_scale(kind, scale).expect("eval scale");
        Runner::new(config, mix.sources(1, scale))
            .expect("runner")
            .run()
    };
    let static_run = run(SchemeKind::Static);
    let time_run = run(SchemeKind::Time);
    let untangle_run = run(SchemeKind::Untangle);

    println!(
        "{:<22} {:>9} {:>11} {:>11} {:>11} {:>12}",
        "workload", "median", "IPC/STATIC", "IPC/STATIC", "leak TIME", "leak UNTNGL"
    );
    println!(
        "{:<22} {:>9} {:>11} {:>11} {:>11} {:>12}",
        "", "UNTANGLE", "TIME", "UNTANGLE", "(bit)", "(bit)"
    );
    let mut time_norm = Vec::new();
    let mut unt_norm = Vec::new();
    for (i, label) in mix.labels().iter().enumerate() {
        let base = static_run.domains[i].ipc();
        let t = time_run.domains[i].ipc() / base;
        let u = untangle_run.domains[i].ipc() / base;
        time_norm.push(t);
        unt_norm.push(u);
        let median = untangle_run.domains[i]
            .size_quartiles()
            .map(|q| q.2.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "{label:<22} {median:>9} {t:>11.2} {u:>11.2} {:>11.2} {:>12.3}",
            time_run.domains[i].leakage.bits_per_assessment(),
            untangle_run.domains[i].leakage.bits_per_assessment(),
        );
    }
    println!(
        "\nsystem-wide speedup over STATIC: TIME {:.2}, UNTANGLE {:.2}",
        geometric_mean(&time_norm),
        geometric_mean(&unt_norm)
    );
    let (m, a) = untangle_run.domains.iter().fold((0u64, 0u64), |(m, a), d| {
        (m + d.leakage.maintains, a + d.leakage.assessments)
    });
    println!(
        "UNTANGLE Maintain fraction: {:.0} % of {a} assessments",
        m as f64 / a as f64 * 100.0
    );
}
