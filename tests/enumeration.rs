//! Ground-truth validation (§3.2 → §5): enumerate the victim's inputs,
//! run the Untangle scheme once per input, measure the entropy of the
//! realized resizing traces — and check the runtime accountant's charge
//! is a sound upper bound on it.

use untangle::core::enumerate::{measure_leakage, trace_to_sequences};
use untangle::core::runner::{DomainReport, Runner, RunnerConfig};
use untangle::core::scheme::SchemeKind;
use untangle::trace::snippets::secret_delayed_traversal;
use untangle::trace::source::TraceSource;
use untangle::trace::synth::{WorkingSetConfig, WorkingSetModel};
use untangle::trace::LineAddr;

/// Runs the Fig. 1c victim with a secret-selected delay length.
fn run_victim(delay_instrs: u64) -> DomainReport {
    let public = WorkingSetModel::new(
        WorkingSetConfig {
            working_set_bytes: 256 << 10,
            ..WorkingSetConfig::default()
        },
        3,
    )
    .take_instrs(100_000);
    let delayed = secret_delayed_traversal(
        delay_instrs > 0,
        delay_instrs,
        4 << 20,
        LineAddr::new(1 << 30),
        true,
    );
    let again = secret_delayed_traversal(false, 0, 4 << 20, LineAddr::new(1 << 30), true);
    let tail = WorkingSetModel::new(WorkingSetConfig::default(), 4).take_instrs(100_000);
    let mut config = RunnerConfig::test_scale(SchemeKind::Untangle, 1);
    config.warmup_cycles = 0.0;
    config.slice_instrs = u64::MAX;
    config.params.delay_max_cycles = 0; // isolate the secret's timing effect
    let report = Runner::new(
        config,
        vec![Box::new(public.chain(delayed).chain(again).chain(tail))],
    )
    .expect("runner")
    .run();
    report.domains.into_iter().next().expect("one domain")
}

#[test]
fn accountant_bound_dominates_enumerated_ground_truth() {
    // Eight equally likely secrets, each delaying the public traversal
    // differently. The §3.2 enumeration measures the true leakage; the
    // per-run accountant charge must upper-bound the per-run share of
    // it (the bound is per-execution, the entropy is over the
    // ensemble).
    let delays: Vec<u64> = (0..8).map(|i| i * 120_000).collect();
    let probs = vec![1.0 / delays.len() as f64; delays.len()];

    let reports: Vec<DomainReport> = delays.iter().map(|&d| run_victim(d)).collect();
    // Attacker resolution: one rate-table unit (cooldown/16 = 125
    // cycles at the test scale).
    let resolution = 125.0;
    let ground_truth =
        measure_leakage(&probs, resolution, |i| reports[i].trace.clone()).expect("valid ensemble");

    assert!(
        ground_truth.action_bits.abs() < 1e-9,
        "Untangle eliminates action leakage; measured {}",
        ground_truth.action_bits
    );
    assert!(
        ground_truth.scheduling_bits > 0.0,
        "distinct delays must appear in the timings"
    );
    // At most log2(8) = 3 bits can be carried by 8 equally likely
    // secrets.
    assert!(ground_truth.scheduling_bits <= 3.0 + 1e-9);

    // Soundness: the *minimum* per-run charge must cover the per-run
    // entropy share. (Each run's charge bounds the information its
    // timing can carry; the ensemble entropy is the average such
    // information.)
    let min_charge = reports
        .iter()
        .map(|r| r.leakage.total_bits)
        .fold(f64::INFINITY, f64::min);
    assert!(
        min_charge >= ground_truth.scheduling_bits / delays.len() as f64,
        "min charge {min_charge} undercuts entropy share {}",
        ground_truth.scheduling_bits / delays.len() as f64
    );
}

#[test]
fn enumeration_degenerates_to_zero_for_a_single_input() {
    let report = run_victim(0);
    let l = measure_leakage(&[1.0], 125.0, |_| report.trace.clone()).expect("valid");
    assert_eq!(l.total_bits(), 0.0, "one input cannot leak");
}

#[test]
fn trace_to_sequences_matches_runner_output() {
    let report = run_victim(240_000);
    let (actions, times) = trace_to_sequences(&report.trace, 125.0);
    assert_eq!(actions.len(), report.trace.len());
    assert_eq!(times.len(), report.trace.len());
    assert!(times.windows(2).all(|w| w[1] > w[0]), "strictly increasing");
}
