//! End-to-end tests of Untangle's core security claim (§5.2): with
//! timing-independent metrics, a progress-based schedule, and secret
//! annotations, the resizing **action sequence does not depend on
//! secrets** — while a conventional scheme's does.

use untangle::core::action::Action;
use untangle::core::runner::{Runner, RunnerConfig};
use untangle::core::scheme::SchemeKind;
use untangle::trace::annotate::{RegionAnnotator, SecretRegion};
use untangle::trace::snippets::{secret_gated_traversal, secret_strided_traversal};
use untangle::trace::source::{Interleave, TraceSource};
use untangle::trace::synth::{CryptoConfig, CryptoModel, WorkingSetConfig, WorkingSetModel};
use untangle::trace::LineAddr;

/// Runs a full (finite) source to exhaustion with architecturally
/// aligned boundaries and returns the entire action sequence.
fn full_trace<S: TraceSource + 'static>(kind: SchemeKind, source: S) -> Vec<Action> {
    let mut config = RunnerConfig::test_scale(kind, 1);
    config.warmup_cycles = 0.0;
    config.slice_instrs = u64::MAX;
    let report = Runner::new(config, vec![Box::new(source)])
        .expect("runner")
        .run();
    report.domains[0].trace.action_sequence()
}

fn fig1a_source(secret: bool, annotate: bool) -> impl TraceSource {
    let public = |seed| {
        WorkingSetModel::new(
            WorkingSetConfig {
                working_set_bytes: 512 << 10,
                ..WorkingSetConfig::default()
            },
            seed,
        )
        .take_instrs(120_000)
    };
    // Three passes so the gated array shows reuse.
    let gated = secret_gated_traversal(secret, 4 << 20, LineAddr::new(1 << 30), annotate)
        .chain(secret_gated_traversal(
            secret,
            4 << 20,
            LineAddr::new(1 << 30),
            annotate,
        ))
        .chain(secret_gated_traversal(
            secret,
            4 << 20,
            LineAddr::new(1 << 30),
            annotate,
        ));
    public(1).chain(gated).chain(public(2))
}

#[test]
fn fig1a_conventional_scheme_leaks_through_actions() {
    let a = full_trace(SchemeKind::Time, fig1a_source(false, false));
    let b = full_trace(SchemeKind::Time, fig1a_source(true, false));
    assert_ne!(
        a, b,
        "the conventional scheme must react to the secret-gated traversal"
    );
}

#[test]
fn fig1a_untangle_actions_are_secret_independent() {
    let a = full_trace(SchemeKind::Untangle, fig1a_source(false, true));
    let b = full_trace(SchemeKind::Untangle, fig1a_source(true, true));
    assert_eq!(a, b, "annotations must remove the action leakage");
}

#[test]
fn fig1a_untangle_without_annotations_still_leaks() {
    // The ablation DESIGN.md calls out: same scheme, annotations off.
    let a = full_trace(SchemeKind::Untangle, fig1a_source(false, false));
    let b = full_trace(SchemeKind::Untangle, fig1a_source(true, false));
    assert_ne!(
        a, b,
        "without annotations the secret-dependent demand reaches the monitor"
    );
}

fn fig1b_source(secret: u64, annotate: bool) -> impl TraceSource {
    let public = |seed| {
        WorkingSetModel::new(
            WorkingSetConfig {
                working_set_bytes: 512 << 10,
                ..WorkingSetConfig::default()
            },
            seed,
        )
        .take_instrs(120_000)
    };
    // Strided accesses into a 4 MB array: the touched footprint depends
    // on the secret. Repeated so the footprint shows reuse.
    let strided =
        secret_strided_traversal(secret, 500_000, 4 << 20, LineAddr::new(1 << 30), annotate).chain(
            secret_strided_traversal(secret, 500_000, 4 << 20, LineAddr::new(1 << 30), annotate),
        );
    public(3).chain(strided).chain(public(4))
}

#[test]
fn fig1b_untangle_actions_are_secret_independent() {
    let a = full_trace(SchemeKind::Untangle, fig1b_source(0, true));
    let b = full_trace(SchemeKind::Untangle, fig1b_source(64, true));
    assert_eq!(
        a, b,
        "data-flow annotations must hide the strided footprint"
    );
}

#[test]
fn fig1b_conventional_scheme_sees_the_stride() {
    let a = full_trace(SchemeKind::Time, fig1b_source(0, false));
    let b = full_trace(SchemeKind::Time, fig1b_source(64, false));
    assert_ne!(a, b, "stride 0 vs 64 changes demand visible to the metric");
}

/// The paper's actual workload shape: crypto (fully annotated, secret-
/// parameterized) interleaved with a public SPEC-like benchmark.
fn workload(secret: u64) -> impl TraceSource {
    let crypto = CryptoModel::new(
        CryptoConfig {
            secret,
            secret_scales_footprint: true,
            region_base: LineAddr::new(1 << 40),
            ..CryptoConfig::default()
        },
        11,
    );
    let public = WorkingSetModel::new(
        WorkingSetConfig {
            working_set_bytes: 3 << 20,
            ..WorkingSetConfig::default()
        },
        11,
    );
    Interleave::new(crypto, 2_000, public, 20_000).take_instrs(500_000)
}

#[test]
fn crypto_workload_untangle_trace_is_secret_independent() {
    let a = full_trace(SchemeKind::Untangle, workload(1));
    let b = full_trace(SchemeKind::Untangle, workload(0xdead_beef));
    assert_eq!(a, b);
    assert!(!a.is_empty(), "the run must actually assess");
}

#[test]
fn crypto_workload_conventional_trace_depends_on_secret_footprint() {
    // With secret_scales_footprint, secrets 0 and 3 differ by 4x in
    // footprint; the conventional metric sees it.
    let mk = |secret| {
        let crypto = CryptoModel::new(
            CryptoConfig {
                secret,
                secret_scales_footprint: true,
                table_bytes: 512 << 10,
                region_base: LineAddr::new(1 << 40),
                ..CryptoConfig::default()
            },
            11,
        );
        let public = WorkingSetModel::new(WorkingSetConfig::default(), 11);
        Interleave::new(crypto, 10_000, public, 20_000).take_instrs(600_000)
    };
    let a = full_trace(SchemeKind::Time, mk(0));
    let b = full_trace(SchemeKind::Time, mk(3));
    assert_ne!(
        a, b,
        "conventional dynamic partitioning leaks the footprint"
    );
}

#[test]
fn coarse_region_annotations_also_remove_action_leakage() {
    // §7: a page-table-bit style coarse annotation of the secret region
    // is conservative but sound — Untangle's trace stays
    // secret-independent even when the fine-grained annotations are
    // replaced by a region mark over the crypto table.
    let mk = |secret: u64| {
        let crypto_base = LineAddr::new(1 << 40);
        let crypto = CryptoModel::new(
            CryptoConfig {
                secret,
                secret_scales_footprint: true,
                table_bytes: 256 << 10,
                region_base: crypto_base,
                ..CryptoConfig::default()
            },
            11,
        );
        let public = WorkingSetModel::new(
            WorkingSetConfig {
                working_set_bytes: 3 << 20,
                ..WorkingSetConfig::default()
            },
            11,
        );
        let mix = Interleave::new(crypto, 2_000, public, 20_000).take_instrs(400_000);
        // Cover the whole possible footprint (4x the table under
        // secret_scales_footprint): conservative, like a page bit.
        let region = SecretRegion::new(crypto_base, 4 * (256 << 10));
        RegionAnnotator::new(mix, vec![region], true)
    };
    let a = full_trace(SchemeKind::Untangle, mk(0));
    let b = full_trace(SchemeKind::Untangle, mk(3));
    assert_eq!(
        a, b,
        "coarse annotations must suffice for secret-independence"
    );
}
