//! Monte-Carlo validation of the covert-channel model: simulate an
//! actual sender/receiver pair over the §5.3.3 channel and check that
//! the empirically achieved information never beats the certified
//! `R'_max` bound.

use std::collections::HashMap;
use untangle::info::{Channel, ChannelConfig, DelayDist, RmaxSolver};
use untangle::trace::synth::TraceRng;

/// Empirical mutual information (bits) from (x, y) samples.
fn empirical_mi(samples: &[(usize, i64)]) -> f64 {
    let n = samples.len() as f64;
    let mut joint: HashMap<(usize, i64), f64> = HashMap::new();
    let mut px: HashMap<usize, f64> = HashMap::new();
    let mut py: HashMap<i64, f64> = HashMap::new();
    for &(x, y) in samples {
        *joint.entry((x, y)).or_default() += 1.0 / n;
        *px.entry(x).or_default() += 1.0 / n;
        *py.entry(y).or_default() += 1.0 / n;
    }
    joint
        .iter()
        .map(|(&(x, y), &pxy)| pxy * (pxy / (px[&x] * py[&y])).log2())
        .sum()
}

/// Sample an index from the categorical distribution `p`.
fn sample(rng: &mut TraceRng, p: &[f64]) -> usize {
    let u = rng.unit_f64();
    let mut acc = 0.0;
    for (i, &pi) in p.iter().enumerate() {
        acc += pi;
        if u < acc {
            return i;
        }
    }
    p.len() - 1
}

#[test]
fn simulated_sender_cannot_beat_certified_rmax() {
    let cooldown = 6u64;
    let delay_width = 4usize;
    let config = ChannelConfig::evenly_spaced(
        cooldown,
        6,
        delay_width as u64,
        DelayDist::uniform(delay_width).expect("valid width"),
    )
    .expect("valid config");
    let channel = Channel::new(config.clone()).expect("valid channel");
    let result = RmaxSolver::new(channel).solve().expect("solver converges");

    // Simulate the optimal sender: draw symbols from the optimizing
    // input distribution, transmit via dwell durations, receive through
    // the delay-difference noise.
    let mut rng = TraceRng::new(7);
    let n = 200_000;
    let mut samples = Vec::with_capacity(n);
    let mut total_time = 0u64;
    let mut prev_delay = rng.below(delay_width as u64) as i64;
    let p = result.input.as_slice().to_vec();
    for _ in 0..n {
        let x = sample(&mut rng, &p);
        let d_x = config.durations[x];
        let delay = rng.below(delay_width as u64) as i64;
        let d_y = d_x as i64 + delay - prev_delay;
        prev_delay = delay;
        total_time += d_x;
        samples.push((x, d_y));
    }

    let mi_per_tx = empirical_mi(&samples);
    let achieved_rate = mi_per_tx * n as f64 / total_time as f64;
    assert!(
        achieved_rate <= result.upper_bound + 0.01,
        "simulated rate {achieved_rate} beats certified bound {}",
        result.upper_bound
    );
    // The simulation should also come reasonably close (the bound is
    // tight, not vacuous): within 3x.
    assert!(
        achieved_rate * 3.0 > result.upper_bound,
        "bound {} looks vacuous vs simulated {achieved_rate}",
        result.upper_bound
    );
}

#[test]
fn noiseless_simulation_achieves_the_bound() {
    // Without delay noise the channel is deterministic: the simulated
    // rate must match R_max almost exactly.
    let config = ChannelConfig {
        cooldown: 2,
        durations: vec![2, 3, 4, 5],
        delay: DelayDist::none(),
    };
    let channel = Channel::new(config.clone()).expect("valid channel");
    let result = RmaxSolver::new(channel).solve().expect("solver converges");

    let mut rng = TraceRng::new(9);
    let n = 300_000;
    let p = result.input.as_slice().to_vec();
    let mut info_sum = 0.0;
    let mut total_time = 0u64;
    for _ in 0..n {
        let x = sample(&mut rng, &p);
        // Deterministic channel: each symbol carries -log2 p(x) bits.
        info_sum += -p[x].log2();
        total_time += config.durations[x];
    }
    let rate = info_sum / total_time as f64;
    assert!(
        (rate - result.rate).abs() < 0.01,
        "simulated {rate} vs solved {}",
        result.rate
    );
}
