//! §6.3 end to end: the framework's resource-agnostic pieces driving
//! the TLB and SMT substrates through the facade crate.

use untangle::core::schedule::{ProgressSchedule, ScheduleEvent};
use untangle::core::taint::Labeled;
use untangle::info::rate_table::{RateTable, RateTableConfig};
use untangle::info::DelayDist;
use untangle::sim::smt::{FuClass, FuMixMonitor, SlotAllocation, SmtCore, SmtThreadModel};
use untangle::sim::tlb::{Tlb, TlbUtilityMonitor, TLB_SIZES};
use untangle::trace::source::TraceSource;
use untangle::trace::synth::{WorkingSetConfig, WorkingSetModel};

#[test]
fn tlb_resizing_loop_settles_and_charges_bounded_bits() {
    let mut workload = WorkingSetModel::new(
        WorkingSetConfig {
            working_set_bytes: 1 << 20, // 256 pages
            hot_fraction: 0.2,
            stream_fraction: 0.0,
            mem_fraction: 0.5,
            ..WorkingSetConfig::default()
        },
        5,
    );
    let mut tlb = Tlb::new(32);
    let mut monitor = TlbUtilityMonitor::new(4096);
    let mut schedule = ProgressSchedule::new(50_000);
    let table = RateTable::precompute(&RateTableConfig {
        cooldown: 16,
        n_symbols: 8,
        step: 8,
        delay: DelayDist::uniform(8).expect("valid"),
        max_maintains: 8,
    })
    .expect("converges");

    let mut charged = 0.0;
    let mut maintains = 0usize;
    let mut visible = 0u32;
    for _ in 0..12 {
        loop {
            let instr = workload.next_instr().expect("infinite");
            if let Some(a) = instr.mem_access() {
                tlb.translate(a.addr);
                if instr.counts_toward_utilization() {
                    monitor.observe(a.addr);
                }
            }
            if instr.counts_toward_progress()
                && schedule.on_retire(Labeled::public(true)) == ScheduleEvent::Assess
            {
                break;
            }
        }
        let target = monitor.adequate_entries(monitor.window_fill() as u64 / 50);
        if target != tlb.entries() {
            charged += table.rate(maintains) * 16.0 * (maintains as f64 + 1.0);
            maintains = 0;
            visible += 1;
            tlb.resize(target);
        } else {
            maintains += 1;
        }
    }
    // A 256-page working set needs at least the 256-entry slice (the
    // slack rule may or may not justify the full 512).
    assert!(tlb.entries() >= 256, "settled at {}", tlb.entries());
    assert!(TLB_SIZES.contains(&tlb.entries()));
    assert!(visible >= 1, "at least one expansion must happen");
    assert!(visible <= 3, "the loop must settle, saw {visible} resizes");
    assert!(charged > 0.0 && charged < 10.0, "charged {charged} bits");
}

#[test]
fn tlb_resizing_loop_is_deterministic() {
    // The whole §6.3 loop is architecturally determined: two runs give
    // identical resize traces.
    let run = || {
        let mut workload = WorkingSetModel::new(
            WorkingSetConfig {
                working_set_bytes: 512 << 10,
                mem_fraction: 0.5,
                ..WorkingSetConfig::default()
            },
            9,
        );
        let mut tlb = Tlb::new(16);
        let mut monitor = TlbUtilityMonitor::new(2048);
        let mut schedule = ProgressSchedule::new(20_000);
        let mut sizes = Vec::new();
        for _ in 0..10 {
            loop {
                let instr = workload.next_instr().expect("infinite");
                if let Some(a) = instr.mem_access() {
                    tlb.translate(a.addr);
                    monitor.observe(a.addr);
                }
                if schedule.on_retire(Labeled::public(instr.counts_toward_progress()))
                    == ScheduleEvent::Assess
                {
                    break;
                }
            }
            let target = monitor.adequate_entries(monitor.window_fill() as u64 / 50);
            if target != tlb.entries() {
                tlb.resize(target);
            }
            sizes.push(tlb.entries());
        }
        sizes
    };
    assert_eq!(run(), run());
}

#[test]
fn smt_repartitioning_improves_both_threads() {
    let mut core = SmtCore::new(SlotAllocation::even());
    let mut monitors = [FuMixMonitor::new(2048), FuMixMonitor::new(2048)];
    let mut t0 = SmtThreadModel::new([10.0, 0.5, 0.5, 1.0], 1);
    let mut t1 = SmtThreadModel::new([1.0, 0.5, 0.5, 10.0], 2);
    let mut pending: [Option<FuClass>; 2] = [None, None];

    let drive = |core: &mut SmtCore,
                 monitors: &mut [FuMixMonitor; 2],
                 t0: &mut SmtThreadModel,
                 t1: &mut SmtThreadModel,
                 pending: &mut [Option<FuClass>; 2],
                 cycles: u64| {
        let start = (core.retired(0), core.retired(1));
        for _ in 0..cycles {
            for thread in 0..2usize {
                for _ in 0..4 {
                    let class = pending[thread].take().unwrap_or_else(|| {
                        if thread == 0 {
                            t0.next_class()
                        } else {
                            t1.next_class()
                        }
                    });
                    if core.try_issue(thread, class) {
                        monitors[thread].observe(class);
                    } else {
                        pending[thread] = Some(class);
                        break;
                    }
                }
            }
            core.next_cycle();
        }
        (core.retired(0) - start.0, core.retired(1) - start.1)
    };

    let before = drive(
        &mut core,
        &mut monitors,
        &mut t0,
        &mut t1,
        &mut pending,
        10_000,
    );
    let allocation =
        FuMixMonitor::proportional_allocation(&monitors[0], &monitors[1], [4, 2, 2, 4]);
    core.set_allocation(allocation);
    let after = drive(
        &mut core,
        &mut monitors,
        &mut t0,
        &mut t1,
        &mut pending,
        10_000,
    );

    assert!(
        after.0 > before.0 && after.1 > before.1,
        "mix-proportional slots must help both threads: {before:?} -> {after:?}"
    );
}
