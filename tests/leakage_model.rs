//! Property-style tests of the information-theoretic core: the §5.1
//! chain-rule decomposition, entropy bounds, and the covert-channel
//! invariants of §5.3/Appendix A. Inputs are drawn from a seeded
//! [`TraceRng`] (the registry-free stand-in for a property-testing
//! framework); failing cases print their sampled inputs.

use untangle::info::decompose::TraceEnsemble;
use untangle::info::entropy::JointDist;
use untangle::info::{Channel, ChannelConfig, DelayDist, Dist, RmaxSolver};
use untangle::trace::synth::TraceRng;

/// A small random trace ensemble (valid probabilities, strictly
/// increasing timings, matching lengths).
fn ensemble(gen: &mut TraceRng) -> TraceEnsemble<u8> {
    // Up to 6 traces; each has 1..=4 actions from an alphabet of 3.
    let n_traces = 1 + gen.below(6) as usize;
    let raw: Vec<(Vec<u8>, Vec<u64>, u32)> = (0..n_traces)
        .map(|_| {
            let len = 1 + gen.below(4) as usize;
            let actions: Vec<u8> = (0..len).map(|_| gen.below(3) as u8).collect();
            let gaps: Vec<u64> = (0..len).map(|_| 1 + gen.below(99)).collect();
            (actions, gaps, 1 + gen.below(99) as u32)
        })
        .collect();
    let total: u32 = raw.iter().map(|(_, _, w)| *w).sum();
    let mut e = TraceEnsemble::new();
    for (actions, gaps, w) in raw {
        // Build strictly increasing timestamps from positive gaps.
        let mut t = 0u64;
        let times: Vec<u64> = gaps
            .iter()
            .map(|g| {
                t += g;
                t
            })
            .collect();
        e.add_trace(actions, times, w as f64 / total as f64);
    }
    e
}

#[test]
fn decomposition_equals_joint_entropy() {
    let mut gen = TraceRng::new(0xdeca);
    for _ in 0..48 {
        let e = ensemble(&mut gen);
        let breakdown = e.leakage().expect("constructed to be valid");
        let joint = e.joint_entropy_bits().expect("valid");
        assert!(
            (breakdown.total_bits() - joint).abs() < 1e-9,
            "chain rule: H(S,T) = H(S) + E[H(T|S)]"
        );
        assert!(breakdown.action_bits >= -1e-12);
        assert!(breakdown.scheduling_bits >= -1e-12);
    }
}

#[test]
fn entropy_bounded_by_log_alphabet() {
    let mut gen = TraceRng::new(0xe57);
    for _ in 0..48 {
        let n = 1 + gen.below(15) as usize;
        let weights: Vec<f64> = (0..n).map(|_| (1 + gen.below(999)) as f64).collect();
        let dist = Dist::from_weights(weights).unwrap();
        let h = dist.entropy_bits();
        assert!(h >= -1e-12);
        assert!(h <= (dist.len() as f64).log2() + 1e-9, "n {n}: H = {h}");
    }
}

#[test]
fn mutual_information_nonnegative_and_bounded() {
    let mut gen = TraceRng::new(0x3141);
    for _ in 0..48 {
        // Build a joint table from random weights (2 x n/2).
        let n = (4 + gen.below(9) as usize) / 2 * 2;
        let probs: Vec<u32> = (0..n).map(|_| 1 + gen.below(99) as u32).collect();
        let total: u32 = probs.iter().sum();
        let table: Vec<f64> = probs.iter().map(|&w| w as f64 / total as f64).collect();
        let j = JointDist::new(2, n / 2, table).unwrap();
        let mi = j.mutual_information_bits();
        assert!(mi >= -1e-9, "I(X;Y) >= 0, got {mi}");
        assert!(mi <= j.marginal_x().entropy_bits() + 1e-9);
        assert!(mi <= j.marginal_y().entropy_bits() + 1e-9);
    }
}

#[test]
fn channel_info_nonnegative_for_any_input() {
    let mut gen = TraceRng::new(0xc4a2);
    for _ in 0..32 {
        let delay_width = 1 + gen.below(5) as usize;
        let delay = if delay_width == 1 {
            DelayDist::none()
        } else {
            DelayDist::uniform(delay_width).unwrap()
        };
        let ch = Channel::new(ChannelConfig::evenly_spaced(4, 4, 3, delay).unwrap()).unwrap();
        let weights: Vec<f64> = (0..4).map(|_| (1 + gen.below(49)) as f64).collect();
        let input = Dist::from_weights(weights).unwrap();
        let info = ch.info_per_transmission_bits(&input).unwrap();
        assert!(
            info >= -1e-9,
            "delay_width {delay_width}: H(Y) - H(delta) >= 0, got {info}"
        );
        // The A.10 bound is conservative (it subtracts H(δ), not
        // H(δ_i − δ_{i−1})), so it may exceed H(X); it is still capped
        // by the output alphabet size.
        assert!(info <= (ch.num_outputs() as f64).log2() + 1e-9);
    }
}

#[test]
fn no_input_distribution_beats_the_certified_bound() {
    let ch = Channel::new(
        ChannelConfig::evenly_spaced(3, 5, 2, DelayDist::uniform(3).unwrap()).unwrap(),
    )
    .unwrap();
    let certified = RmaxSolver::new(ch.clone()).solve().unwrap().upper_bound;
    let mut gen = TraceRng::new(0xb0de);
    for _ in 0..48 {
        let weights: Vec<f64> = (0..5).map(|_| (1 + gen.below(49)) as f64).collect();
        let input = Dist::from_weights(weights.clone()).unwrap();
        let rate = ch.rate_bits_per_unit(&input).unwrap();
        assert!(
            rate <= certified + 1e-6,
            "input {weights:?}: rate {rate} beats certified bound {certified}"
        );
    }
}

#[test]
fn ensemble_scaling_example_from_section_3_3() {
    // The conservative bound of §3.3: k independent binary choices at
    // fixed times leak exactly k bits when all traces are equally
    // likely. Checked for several k.
    for k in 1..=8u32 {
        let mut e = TraceEnsemble::new();
        let total = 1u32 << k;
        for code in 0..total {
            let actions: Vec<u8> = (0..k).map(|i| (code >> i & 1) as u8).collect();
            let times: Vec<u64> = (1..=k as u64).collect();
            e.add_trace(actions, times, 1.0 / total as f64);
        }
        let l = e.leakage().unwrap();
        assert!((l.action_bits - k as f64).abs() < 1e-9);
        assert!(l.scheduling_bits.abs() < 1e-9);
    }
}
