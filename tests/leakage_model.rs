//! Property-based tests of the information-theoretic core: the §5.1
//! chain-rule decomposition, entropy bounds, and the covert-channel
//! invariants of §5.3/Appendix A.

use proptest::prelude::*;
use untangle::info::decompose::TraceEnsemble;
use untangle::info::entropy::JointDist;
use untangle::info::{Channel, ChannelConfig, DelayDist, Dist, RmaxSolver};

/// Strategy: a small random trace ensemble (valid probabilities,
/// strictly increasing timings, matching lengths).
fn ensembles() -> impl Strategy<Value = TraceEnsemble<u8>> {
    // Up to 6 traces; each has 1..=4 actions from an alphabet of 3.
    let trace = (
        proptest::collection::vec(0u8..3, 1..=4),
        proptest::collection::vec(1u64..100, 1..=4),
        1u32..100,
    );
    proptest::collection::vec(trace, 1..=6).prop_map(|raw| {
        let total: u32 = raw.iter().map(|(_, _, w)| *w).sum();
        let mut e = TraceEnsemble::new();
        for (actions, gaps, w) in raw {
            let n = actions.len();
            // Build strictly increasing timestamps from positive gaps.
            let mut t = 0u64;
            let times: Vec<u64> = gaps
                .iter()
                .cycle()
                .take(n)
                .map(|g| {
                    t += g;
                    t
                })
                .collect();
            e.add_trace(actions, times, w as f64 / total as f64);
        }
        e
    })
}

proptest! {
    #[test]
    fn decomposition_equals_joint_entropy(e in ensembles()) {
        let breakdown = e.leakage().expect("constructed to be valid");
        let joint = e.joint_entropy_bits().expect("valid");
        prop_assert!((breakdown.total_bits() - joint).abs() < 1e-9,
            "chain rule: H(S,T) = H(S) + E[H(T|S)]");
        prop_assert!(breakdown.action_bits >= -1e-12);
        prop_assert!(breakdown.scheduling_bits >= -1e-12);
    }

    #[test]
    fn entropy_bounded_by_log_alphabet(weights in proptest::collection::vec(1u32..1000, 1..16)) {
        let dist = Dist::from_weights(weights.iter().map(|&w| w as f64).collect()).unwrap();
        let h = dist.entropy_bits();
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (dist.len() as f64).log2() + 1e-9);
    }

    #[test]
    fn mutual_information_nonnegative_and_bounded(
        probs in proptest::collection::vec(1u32..100, 4..=12)
    ) {
        // Build a joint table from random weights (2 x n/2).
        let n = probs.len() / 2 * 2;
        let total: u32 = probs[..n].iter().sum();
        let table: Vec<f64> = probs[..n].iter().map(|&w| w as f64 / total as f64).collect();
        let j = JointDist::new(2, n / 2, table).unwrap();
        let mi = j.mutual_information_bits();
        prop_assert!(mi >= -1e-9, "I(X;Y) >= 0, got {mi}");
        prop_assert!(mi <= j.marginal_x().entropy_bits() + 1e-9);
        prop_assert!(mi <= j.marginal_y().entropy_bits() + 1e-9);
    }

    #[test]
    fn channel_info_nonnegative_for_any_input(
        weights in proptest::collection::vec(1u32..50, 4),
        delay_width in 1usize..6,
    ) {
        let delay = if delay_width == 1 {
            DelayDist::none()
        } else {
            DelayDist::uniform(delay_width).unwrap()
        };
        let ch = Channel::new(
            ChannelConfig::evenly_spaced(4, 4, 3, delay).unwrap()
        ).unwrap();
        let input = Dist::from_weights(weights.iter().map(|&w| w as f64).collect()).unwrap();
        let info = ch.info_per_transmission_bits(&input).unwrap();
        prop_assert!(info >= -1e-9, "H(Y) - H(delta) >= 0, got {info}");
        // The A.10 bound is conservative (it subtracts H(δ), not
        // H(δ_i − δ_{i−1})), so it may exceed H(X); it is still capped
        // by the output alphabet size.
        prop_assert!(info <= (ch.num_outputs() as f64).log2() + 1e-9);
    }

    #[test]
    fn no_input_distribution_beats_the_certified_bound(
        weights in proptest::collection::vec(1u32..50, 5),
    ) {
        let ch = Channel::new(
            ChannelConfig::evenly_spaced(3, 5, 2, DelayDist::uniform(3).unwrap()).unwrap()
        ).unwrap();
        let certified = RmaxSolver::new(ch.clone()).solve().unwrap().upper_bound;
        let input = Dist::from_weights(weights.iter().map(|&w| w as f64).collect()).unwrap();
        let rate = ch.rate_bits_per_unit(&input);
        prop_assert!(rate <= certified + 1e-6,
            "random input {rate} beats certified bound {certified}");
    }
}

#[test]
fn ensemble_scaling_example_from_section_3_3() {
    // The conservative bound of §3.3: k independent binary choices at
    // fixed times leak exactly k bits when all traces are equally
    // likely. Checked for several k.
    for k in 1..=8u32 {
        let mut e = TraceEnsemble::new();
        let total = 1u32 << k;
        for code in 0..total {
            let actions: Vec<u8> = (0..k).map(|i| (code >> i & 1) as u8).collect();
            let times: Vec<u64> = (1..=k as u64).collect();
            e.add_trace(actions, times, 1.0 / total as f64);
        }
        let l = e.leakage().unwrap();
        assert!((l.action_bits - k as f64).abs() < 1e-9);
        assert!(l.scheduling_bits.abs() < 1e-9);
    }
}
