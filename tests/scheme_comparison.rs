//! Cross-crate integration: running real workload mixes under the four
//! schemes and checking the paper's headline relationships end to end.

use untangle::core::runner::{Runner, RunnerConfig};
use untangle::core::scheme::SchemeKind;
use untangle::sim::config::PartitionSize;
use untangle::workloads::mix::mix_by_id;

const SCALE: f64 = 0.001;

fn run_mix1(kind: SchemeKind) -> untangle::core::runner::RunReport {
    let mix = mix_by_id(1).expect("mix 1 exists");
    let config = RunnerConfig::eval_scale(kind, SCALE).expect("eval scale");
    Runner::new(config, mix.sources(7, SCALE))
        .expect("runner")
        .run()
}

#[test]
fn untangle_leaks_far_less_than_time_on_a_real_mix() {
    let time = run_mix1(SchemeKind::Time);
    let untangle = run_mix1(SchemeKind::Untangle);
    let avg = |r: &untangle::core::runner::RunReport| {
        r.domains
            .iter()
            .map(|d| d.leakage.bits_per_assessment())
            .sum::<f64>()
            / r.domains.len() as f64
    };
    let t = avg(&time);
    let u = avg(&untangle);
    assert!((t - 9f64.log2()).abs() < 1e-9, "Time charges log2(9)");
    assert!(
        u < 0.5 * t,
        "Untangle must leak at least 2x less per assessment: {u} vs {t}"
    );
}

#[test]
fn every_domain_assesses_and_sizes_stay_supported() {
    let report = run_mix1(SchemeKind::Untangle);
    assert_eq!(report.domains.len(), 8);
    for d in &report.domains {
        assert!(d.leakage.assessments > 0, "every domain must assess");
        for s in &d.size_samples {
            assert!(PartitionSize::ALL.contains(s));
        }
        // Trace counters and accountant agree.
        assert_eq!(d.trace.maintain_count() as u64, d.leakage.maintains);
        assert_eq!(d.trace.visible_count() as u64, d.leakage.visible_actions);
    }
}

#[test]
fn maintain_dominates_in_steady_state() {
    let report = run_mix1(SchemeKind::Untangle);
    let (m, a) = report.domains.iter().fold((0u64, 0u64), |(m, a), d| {
        (m + d.leakage.maintains, a + d.leakage.assessments)
    });
    let fraction = m as f64 / a as f64;
    assert!(
        fraction > 0.7,
        "most assessments should be Maintain (§9: ~90 %), got {fraction}"
    );
}

#[test]
fn static_and_shared_never_leak() {
    for kind in [SchemeKind::Static, SchemeKind::Shared] {
        let report = run_mix1(kind);
        for d in &report.domains {
            assert_eq!(d.leakage.assessments, 0);
            assert_eq!(d.leakage.total_bits, 0.0);
            assert!(d.trace.is_empty());
        }
    }
}

#[test]
fn dynamic_schemes_track_each_other_in_performance() {
    // §8: the Untangle configuration is chosen to match Time's
    // performance. At tiny scales transients dominate, so allow a wide
    // band — the schemes must be within 15 % of each other system-wide.
    let time = run_mix1(SchemeKind::Time).geomean_ipc();
    let untangle = run_mix1(SchemeKind::Untangle).geomean_ipc();
    assert!(time > 0.0 && untangle > 0.0);
    let ratio = untangle / time;
    assert!(
        (0.85..=1.15).contains(&ratio),
        "Untangle/Time IPC ratio {ratio} out of band"
    );
}

#[test]
fn leakage_budget_is_enforced_on_a_real_mix() {
    let mix = mix_by_id(1).expect("mix 1 exists");
    let mut config = RunnerConfig::eval_scale(SchemeKind::Untangle, SCALE).expect("eval scale");
    let budget = 0.05;
    config.params.leakage_budget_bits = Some(budget);
    let report = Runner::new(config, mix.sources(7, SCALE))
        .expect("runner")
        .run();
    for d in &report.domains {
        // The gate blocks any charge that would exceed the budget, so
        // the guarantee is strict.
        assert!(
            d.leakage.total_bits <= budget + 1e-9,
            "budget {} exceeded: {}",
            budget,
            d.leakage.total_bits
        );
        // The domain keeps assessing (Maintains are free) — only the
        // resizes stop.
        assert!(d.leakage.visible_actions <= 1);
    }
}

#[test]
fn runs_are_reproducible_end_to_end() {
    let a = run_mix1(SchemeKind::Untangle);
    let b = run_mix1(SchemeKind::Untangle);
    for (da, db) in a.domains.iter().zip(&b.domains) {
        assert_eq!(da.stats, db.stats);
        assert_eq!(da.trace, db.trace);
        assert_eq!(da.size_samples, db.size_samples);
    }
}
