//! End-to-end tests of the scheduling-leakage story (§5.3): secrets may
//! still shift *when* visible actions happen, the decomposition
//! measures exactly that residue, and the runtime accountant's charge
//! upper-bounds it.

use untangle::core::action::Action;
use untangle::core::runner::{DomainReport, Runner, RunnerConfig};
use untangle::core::scheme::SchemeKind;
use untangle::info::decompose::TraceEnsemble;
use untangle::trace::snippets::secret_delayed_traversal;
use untangle::trace::source::TraceSource;
use untangle::trace::synth::{WorkingSetConfig, WorkingSetModel};
use untangle::trace::LineAddr;

/// Runs the Fig. 1c pattern with a secret-selected delay and returns
/// the full domain report.
fn run_fig1c(delay_instrs: u64) -> DomainReport {
    let public = WorkingSetModel::new(
        WorkingSetConfig {
            working_set_bytes: 256 << 10,
            ..WorkingSetConfig::default()
        },
        3,
    )
    .take_instrs(100_000);
    let delayed = secret_delayed_traversal(
        delay_instrs > 0,
        delay_instrs,
        4 << 20,
        LineAddr::new(1 << 30),
        true,
    );
    let again = secret_delayed_traversal(false, 0, 4 << 20, LineAddr::new(1 << 30), true);
    let tail = WorkingSetModel::new(WorkingSetConfig::default(), 4).take_instrs(100_000);
    let source = public.chain(delayed).chain(again).chain(tail);
    let mut config = RunnerConfig::test_scale(SchemeKind::Untangle, 1);
    config.warmup_cycles = 0.0;
    config.slice_instrs = u64::MAX;
    // Deterministic δ = 0 so the observed shift is exactly the
    // secret-induced one (the random delay is exercised elsewhere).
    config.params.delay_max_cycles = 0;
    let report = Runner::new(config, vec![Box::new(source)])
        .expect("runner")
        .run();
    report.domains.into_iter().next().expect("one domain")
}

#[test]
fn fig1c_same_actions_different_times() {
    let fast = run_fig1c(0);
    let slow = run_fig1c(400_000);
    assert_eq!(
        fast.trace.action_sequence(),
        slow.trace.action_sequence(),
        "the action sequence must be timing-independent"
    );
    let first_visible = |d: &DomainReport| {
        d.trace
            .entries()
            .iter()
            .find(|e| e.class.is_visible())
            .map(|e| e.decided_at_cycles)
            .expect("the public traversal must trigger a visible action")
    };
    let shift = first_visible(&slow) - first_visible(&fast);
    // 400k compute instructions on an 8-wide core = 50k cycles.
    assert!(
        (shift - 50_000.0).abs() < 5_000.0,
        "secret delay must shift the visible action by ~50k cycles, got {shift}"
    );
}

#[test]
fn decomposition_of_fig1c_traces_shows_pure_scheduling_leakage() {
    // Four equally likely secrets → four timing variants of ONE action
    // sequence. The decomposition must report zero action leakage and
    // positive scheduling leakage.
    let delays = [0u64, 200_000, 400_000, 600_000];
    let mut ensemble: TraceEnsemble<Action> = TraceEnsemble::new();
    let mut sequences = Vec::new();
    for &d in &delays {
        let report = run_fig1c(d);
        let actions = report.trace.action_sequence();
        let times: Vec<u64> = report
            .trace
            .entries()
            .iter()
            .map(|e| e.decided_at_cycles as u64)
            .collect();
        sequences.push(actions.clone());
        ensemble.add_trace(actions, times, 1.0 / delays.len() as f64);
    }
    assert!(sequences.windows(2).all(|w| w[0] == w[1]));

    let leakage = ensemble.leakage().expect("valid ensemble");
    assert!(
        leakage.action_bits.abs() < 1e-9,
        "action leakage must be zero, got {}",
        leakage.action_bits
    );
    assert!(
        leakage.scheduling_bits > 1.9,
        "four distinct timings of one sequence carry ~2 bits, got {}",
        leakage.scheduling_bits
    );

    // The runtime accountant must charge at least the realized
    // scheduling entropy (its bound is per-trace; sum the per-run
    // charge for the worst run).
    let max_charged = delays
        .iter()
        .map(|&d| run_fig1c(d).leakage.total_bits)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        max_charged >= leakage.scheduling_bits / delays.len() as f64,
        "certified charge {max_charged} must not undercut the realized entropy share"
    );
}

#[test]
fn random_delay_blurs_the_observable_shift() {
    // With Mechanism 2 enabled, the *applied* time of the visible action
    // includes the random δ; two runs with different rng seeds observe
    // different applied times for identical decided times.
    let run = |seed: u64| {
        let public = WorkingSetModel::new(
            WorkingSetConfig {
                working_set_bytes: 256 << 10,
                ..WorkingSetConfig::default()
            },
            3,
        )
        .take_instrs(100_000);
        let t = secret_delayed_traversal(false, 0, 4 << 20, LineAddr::new(1 << 30), true);
        let t2 = secret_delayed_traversal(false, 0, 4 << 20, LineAddr::new(1 << 30), true);
        let mut config = RunnerConfig::test_scale(SchemeKind::Untangle, 1);
        config.warmup_cycles = 0.0;
        config.slice_instrs = u64::MAX;
        config.seed = seed;
        let report = Runner::new(config, vec![Box::new(public.chain(t).chain(t2))])
            .expect("runner")
            .run();
        let d = report.domains.into_iter().next().expect("one domain");
        d.trace
            .entries()
            .iter()
            .find(|e| e.class.is_visible())
            .map(|e| (e.decided_at_cycles, e.applied_at_cycles))
            .expect("visible action expected")
    };
    let (dec_a, app_a) = run(1);
    let (dec_b, app_b) = run(2);
    assert_eq!(dec_a, dec_b, "decisions are deterministic");
    assert_ne!(app_a, app_b, "the random delay must differ across seeds");
    assert!(app_a >= dec_a && app_b >= dec_b, "δ only delays");
}
